//! The resident build session behind `smlsc daemon` (DESIGN §6j).
//!
//! A cold `smlsc build` pays process startup, pack-index load, stamp
//! load, and a directory scan before the first rebuild decision.  A
//! [`Resident`] pays all of that once, at open, then keeps the analyzed
//! project — stamps, deps cache, lazily indexed bins, statenvs — hot in
//! memory and answers every later build from deltas:
//!
//! * **File-event deltas, not rescans.**  [`Resident::apply_events`]
//!   replaces or removes individual in-memory [`SourceFile`] entries
//!   (via [`Project::add_lazy`]/[`Project::remove`]), so the next build's
//!   four-rung analysis ladder misses *only* the touched units.  A
//!   daemon's filesystem watcher computes those events with
//!   [`Resident::diff_from_disk`] — a stat-only sweep that never reads a
//!   source body.
//! * **Serialized build execution.**  The build entry is re-entrant:
//!   any number of threads may call [`Resident::build`] concurrently,
//!   and a mutex serializes the actual build runs — the bin cache and
//!   stamp cache are single-writer.  Waiters then run their own
//!   (now no-op) build and get a current report.
//! * **Snapshot-consistent reports.**  Every finished build publishes an
//!   immutable [`BuildSnapshot`]; readers ([`Resident::last`], overlapped
//!   stats requests) get a complete snapshot or none, never a report
//!   mid-mutation.
//! * **No-change short-circuit.**  When no delta has been applied since
//!   the last successful build, [`Resident::build`] returns the cached
//!   snapshot without running the analysis ladder at all — the
//!   sub-millisecond answer a 50k-unit no-op needs.
//!
//! [`SourceFile`]: crate::irm::SourceFile

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use smlsc_store::Store;
use smlsc_trace::{self as trace, names};

use crate::irm::{FailurePolicy, Irm, Project, Strategy, UnitOutcome};
use crate::ledger::{Ledger, LedgerRecord};
use crate::CoreError;

/// One filesystem change to feed into the resident session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileEvent {
    /// A source file appeared or changed: replace its in-memory entry
    /// with a fresh lazy stat (the text is read only if a rebuild
    /// decision needs it).
    Upsert {
        /// Unit name (file stem).
        name: String,
        /// On-disk path.
        path: PathBuf,
        /// Modification time, nanoseconds since the epoch.
        mtime_ns: u64,
        /// Size in bytes.
        size: u64,
    },
    /// A source file vanished: drop its unit from the project.
    Remove {
        /// Unit name (file stem).
        name: String,
    },
}

/// An immutable report of one finished resident build, rendered for
/// transport: the daemon serves these verbatim over its socket, and the
/// CLI prints them exactly as an in-process build would have.
#[derive(Debug, Clone)]
pub struct BuildSnapshot {
    /// Build sequence number within this session (1-based).
    pub seq: u64,
    /// Units in the build order.
    pub units: usize,
    /// Units compiled fresh.
    pub recompiled: usize,
    /// Units reused untouched.
    pub reused: usize,
    /// Units whose compile failed.
    pub failed: usize,
    /// Units skipped behind a failed import.
    pub skipped: usize,
    /// The exit code class of the build (0 ok, 1 compile, 3 internal,
    /// 4 store/IO).
    pub exit_code: i32,
    /// The one-line summary (`built N unit(s) [...]: ...`).
    pub summary: String,
    /// Diagnostics for stderr: warnings, failures, skip explanations.
    pub notes: Vec<String>,
    /// Per-unit rebuild decisions (`--explain` lines).
    pub explain: Vec<String>,
    /// The build's full telemetry (`Collector::stats_json`).
    pub stats_json: String,
    /// Wall clock of the build, microseconds.
    pub wall_us: u64,
    /// The delta generation this snapshot reflects (see
    /// [`Resident::build`]'s no-change short-circuit).
    gen: u64,
}

impl BuildSnapshot {
    /// The delta generation this snapshot reflects; current while it
    /// equals [`Resident::generation`].
    pub fn generation(&self) -> u64 {
        self.gen
    }
}

struct State {
    irm: Irm,
    project: Project,
    dir: PathBuf,
    bin_dir: PathBuf,
    stamps_path: PathBuf,
    has_store: bool,
    /// Bumped once per applied [`FileEvent`]; a build snapshot taken at
    /// generation G is current for as long as the generation stays G.
    gen: u64,
    seq: u64,
}

/// A long-lived build session over one project directory.  See the
/// module docs.
pub struct Resident {
    state: Mutex<State>,
    last: RwLock<Option<Arc<BuildSnapshot>>>,
    /// Builds currently executing inside the state lock (structurally
    /// ≤ 1; the high-water mark proves the single-writer invariant to
    /// the concurrency stress test).
    building: AtomicUsize,
    building_high_water: AtomicUsize,
}

impl Resident {
    /// Opens a resident session: loads stamps and the indexed bin
    /// archive from `bin_dir`, scans `dir` (stat-only) into a lazy
    /// project, and wires up the optional shared artifact store.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] when the project directory cannot be scanned;
    /// an empty project is reported as [`CoreError::Io`] too, since a
    /// daemon over zero units can serve nothing.
    pub fn open(
        dir: &Path,
        bin_dir: &Path,
        strategy: Strategy,
        store: Option<Arc<Store>>,
    ) -> Result<Resident, CoreError> {
        let mut irm = Irm::new(strategy);
        let stamps_path = bin_dir.join("stamps.json");
        irm.load_stamps(&stamps_path);
        let has_store = store.is_some();
        if let Some(store) = store {
            irm.set_store(store);
        }
        if bin_dir.is_dir() {
            // A corrupt bin only downgrades that unit to a recompile.
            irm.load_bins(bin_dir).ok();
        }
        let project = Project::from_dir(dir)?;
        if project.files().is_empty() {
            return Err(CoreError::Io(format!("no .sml files in {}", dir.display())));
        }
        Ok(Resident {
            state: Mutex::new(State {
                irm,
                project,
                dir: dir.to_path_buf(),
                bin_dir: bin_dir.to_path_buf(),
                stamps_path,
                has_store,
                gen: 0,
                seq: 0,
            }),
            last: RwLock::new(None),
            building: AtomicUsize::new(0),
            building_high_water: AtomicUsize::new(0),
        })
    }

    /// Stat-only sweep of the project directory, diffed against the
    /// in-memory project: the events that would bring the session up to
    /// date.  Never reads a source body.  The daemon's watcher calls
    /// this each poll; a sync build calls it before deciding.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] when the directory cannot be scanned.
    pub fn diff_from_disk(&self) -> Result<Vec<FileEvent>, CoreError> {
        let st = self.state.lock().expect("resident state lock");
        let fresh = Project::from_dir(&st.dir)?;
        Ok(diff_projects(&st.project, &fresh))
    }

    /// Applies file-event deltas to the in-memory project — targeted
    /// invalidation, no rescan.  Returns how many events were applied.
    /// Each applied event bumps the session generation, invalidating
    /// the no-change short-circuit.
    pub fn apply_events(&self, events: &[FileEvent]) -> usize {
        let mut st = self.state.lock().expect("resident state lock");
        apply_to(&mut st, events)
    }

    /// Builds the project with up to `jobs` workers under `policy`.
    ///
    /// With `sync`, the on-disk state is re-stat'ed first
    /// ([`Self::diff_from_disk`] + [`Self::apply_events`] in one lock),
    /// so an edit the watcher has not polled yet is still seen; without
    /// it, the in-memory project is trusted as-is (the watcher is the
    /// authority — the sub-millisecond path).
    ///
    /// When nothing changed since the last successful build, the cached
    /// snapshot is returned (`true` in the pair) without running the
    /// analysis ladder.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] a normal [`Irm::build_with`] can produce.
    pub fn build(
        &self,
        jobs: usize,
        policy: FailurePolicy,
        sync: bool,
    ) -> Result<(Arc<BuildSnapshot>, bool), CoreError> {
        let mut st = self.state.lock().expect("resident state lock");
        if sync {
            let fresh = Project::from_dir(&st.dir)?;
            let events = diff_projects(&st.project, &fresh);
            apply_to(&mut st, &events);
        }
        if let Some(last) = self.last.read().expect("snapshot lock").as_ref() {
            if last.gen == st.gen && last.exit_code == 0 {
                return Ok((Arc::clone(last), true));
            }
        }
        let snapshot = self.run_build(&mut st, jobs, policy)?;
        let snapshot = Arc::new(snapshot);
        *self.last.write().expect("snapshot lock") = Some(Arc::clone(&snapshot));
        Ok((snapshot, false))
    }

    /// The last completed build's snapshot, if any.
    pub fn last(&self) -> Option<Arc<BuildSnapshot>> {
        self.last.read().expect("snapshot lock").clone()
    }

    /// The session's current delta generation: bumped once per applied
    /// [`FileEvent`].  A last-build snapshot whose
    /// [`BuildSnapshot::generation`] equals this is up to date.
    pub fn generation(&self) -> u64 {
        self.state.lock().expect("resident state lock").gen
    }

    /// Units currently in the project.
    pub fn unit_count(&self) -> usize {
        self.state
            .lock()
            .expect("resident state lock")
            .project
            .files()
            .len()
    }

    /// Highest number of builds ever observed executing at once —
    /// structurally 1 while the single-writer lock holds.
    pub fn building_high_water(&self) -> usize {
        self.building_high_water.load(Ordering::SeqCst)
    }

    /// One serialized build run: the caller holds the state lock.
    fn run_build(
        &self,
        st: &mut State,
        jobs: usize,
        policy: FailurePolicy,
    ) -> Result<BuildSnapshot, CoreError> {
        let started = std::time::Instant::now();
        let collector = trace::Collector::new();
        collector.install();
        let n = self.building.fetch_add(1, Ordering::SeqCst) + 1;
        self.building_high_water.fetch_max(n, Ordering::SeqCst);
        let result = st.irm.build_with(&st.project, jobs, policy);
        self.building.fetch_sub(1, Ordering::SeqCst);
        let report = match result {
            Ok(r) => r,
            Err(e) => {
                trace::uninstall();
                return Err(e);
            }
        };
        let mut notes: Vec<String> = Vec::new();
        for (unit, w) in &report.warnings {
            notes.push(format!("{unit}: {w}"));
        }
        for (_, e) in &report.failed {
            notes.push(format!("error: {e}"));
        }
        for (unit, outcome) in &report.outcomes {
            if let UnitOutcome::Skipped { blocked_on } = outcome {
                let imports: Vec<String> = blocked_on.iter().map(|u| format!("`{u}`")).collect();
                notes.push(format!(
                    "skipped `{unit}`: blocked on failed import(s) {}",
                    imports.join(", ")
                ));
            }
        }
        if let Err(e) = st.irm.save_bins(&st.bin_dir) {
            notes.push(format!("warning: could not persist bins: {e}"));
        }
        if let Err(e) = st.irm.save_stamps(&st.stamps_path) {
            notes.push(format!("warning: could not persist stamps: {e}"));
        }
        let store_suffix = if st.has_store {
            format!(", {} from store", report.store_hits.len())
        } else {
            String::new()
        };
        let failure_suffix = if report.succeeded() {
            String::new()
        } else {
            format!(
                ", {} failed, {} skipped",
                report.failed.len(),
                report.skipped.len()
            )
        };
        let summary = format!(
            "built {} unit(s) [{}]: {} recompiled, {} reused{}{}",
            report.order.len(),
            report.strategy,
            report.recompiled.len(),
            report.reused.len(),
            store_suffix,
            failure_suffix
        );
        let explain: Vec<String> = report
            .decisions
            .iter()
            .map(|(unit, decision)| format!("  {unit}: {decision}"))
            .collect();
        let exit_code = exit_code_for_report(&report);
        let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        // Daemon-tagged flight-recorder line; never fails the build.
        let record =
            LedgerRecord::from_build(&report, &collector, jobs, wall_us, exit_code).tagged_daemon();
        if let Err(e) = Ledger::for_bin_dir(&st.bin_dir).append(&record) {
            notes.push(format!("warning: could not append to build ledger: {e}"));
        }
        let stats_json = collector.stats_json();
        trace::uninstall();
        st.seq += 1;
        Ok(BuildSnapshot {
            seq: st.seq,
            units: report.order.len(),
            recompiled: report.recompiled.len(),
            reused: report.reused.len(),
            failed: report.failed.len(),
            skipped: report.skipped.len(),
            exit_code,
            summary,
            notes,
            explain,
            stats_json,
            wall_us,
            gen: st.gen,
        })
    }
}

/// Mirrors the CLI's exit-code mapping for a finished keep-going build:
/// internal errors dominate, then IO, then plain compile failures.
fn exit_code_for_report(report: &crate::irm::BuildReport) -> i32 {
    if report.succeeded() {
        0
    } else if report.any_internal_failure() {
        3
    } else if report.failed.iter().any(|(_, e)| e.is_io()) {
        4
    } else {
        1
    }
}

/// The events that turn `old` into `fresh`: an upsert per added or
/// touched file (mtime or size moved), a removal per vanished unit.
fn diff_projects(old: &Project, fresh: &Project) -> Vec<FileEvent> {
    let mut events = Vec::new();
    for f in fresh.files() {
        let changed = match old.file(f.name.as_str()) {
            Some(o) => o.mtime != f.mtime || o.size() != f.size(),
            None => true,
        };
        if changed {
            if let Some(path) = f.path() {
                events.push(FileEvent::Upsert {
                    name: f.name.to_string(),
                    path: path.to_path_buf(),
                    mtime_ns: f.mtime,
                    size: f.size(),
                });
            }
        }
    }
    for o in old.files() {
        if fresh.file(o.name.as_str()).is_none() {
            events.push(FileEvent::Remove {
                name: o.name.to_string(),
            });
        }
    }
    events
}

fn apply_to(st: &mut State, events: &[FileEvent]) -> usize {
    let mut applied = 0;
    for event in events {
        match event {
            FileEvent::Upsert {
                name,
                path,
                mtime_ns,
                size,
            } => {
                st.project
                    .add_lazy(name.clone(), path.clone(), *mtime_ns, *size);
                applied += 1;
            }
            FileEvent::Remove { name } => {
                if st.project.remove(name).is_ok() {
                    applied += 1;
                }
            }
        }
    }
    if applied > 0 {
        st.gen += applied as u64;
        trace::counter(names::DAEMON_INVALIDATIONS, applied as u64);
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smlsc-resident-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("src")).unwrap();
        dir
    }

    fn write(dir: &Path, name: &str, text: &str) {
        std::fs::write(dir.join("src").join(format!("{name}.sml")), text).unwrap();
    }

    fn open(dir: &Path) -> Resident {
        Resident::open(&dir.join("src"), &dir.join("bins"), Strategy::Cutoff, None).unwrap()
    }

    #[test]
    fn noop_build_is_served_from_the_cached_snapshot() {
        let dir = temp("noop");
        write(&dir, "a", "structure A = struct fun f x = x + 1 end");
        write(&dir, "b", "structure B = struct val y = A.f 41 end");
        let r = open(&dir);
        let (first, cached) = r.build(2, FailurePolicy::FailFast, true).unwrap();
        assert!(!cached);
        assert_eq!(first.recompiled, 2);
        assert_eq!(first.exit_code, 0);
        let (second, cached) = r.build(2, FailurePolicy::FailFast, true).unwrap();
        assert!(cached, "unchanged project short-circuits to the snapshot");
        assert_eq!(second.seq, first.seq);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deltas_invalidate_exactly_the_touched_unit() {
        let dir = temp("delta");
        write(&dir, "a", "structure A = struct fun f x = x + 1 end");
        write(&dir, "b", "structure B = struct val y = A.f 41 end");
        let r = open(&dir);
        r.build(1, FailurePolicy::FailFast, false).unwrap();
        // Edit the leaf's body on disk; the diff must see exactly it.
        std::thread::sleep(std::time::Duration::from_millis(5));
        write(&dir, "a", "structure A = struct fun f x = x + 2 end");
        let events = r.diff_from_disk().unwrap();
        assert_eq!(events.len(), 1, "{events:?}");
        assert!(matches!(&events[0], FileEvent::Upsert { name, .. } if name == "a"));
        assert_eq!(r.apply_events(&events), 1);
        let (snap, cached) = r.build(1, FailurePolicy::FailFast, false).unwrap();
        assert!(!cached);
        assert_eq!(snap.recompiled, 1, "body edit recompiles the one unit");
        assert_eq!(snap.reused, 1, "the dependent is cut off");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_build_sees_an_unwatched_edit() {
        let dir = temp("sync");
        write(&dir, "a", "structure A = struct val x = 1 end");
        let r = open(&dir);
        r.build(1, FailurePolicy::FailFast, false).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        write(&dir, "a", "structure A = struct val x = 2 end");
        // No apply_events: sync must find the edit itself.
        let (snap, cached) = r.build(1, FailurePolicy::FailFast, true).unwrap();
        assert!(!cached);
        assert_eq!(snap.recompiled, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn removal_events_drop_units() {
        let dir = temp("remove");
        write(&dir, "a", "structure A = struct val x = 1 end");
        write(&dir, "b", "structure B = struct val y = 2 end");
        let r = open(&dir);
        let (snap, _) = r.build(1, FailurePolicy::FailFast, false).unwrap();
        assert_eq!(snap.units, 2);
        std::fs::remove_file(dir.join("src").join("b.sml")).unwrap();
        let events = r.diff_from_disk().unwrap();
        assert_eq!(events, vec![FileEvent::Remove { name: "b".into() }]);
        r.apply_events(&events);
        let (snap, cached) = r.build(1, FailurePolicy::FailFast, false).unwrap();
        assert!(!cached);
        assert_eq!(snap.units, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_builds_are_not_short_circuited() {
        let dir = temp("fail");
        write(&dir, "a", "structure A = struct val x = 1 + \"s\" end");
        let r = open(&dir);
        let (snap, cached) = r.build(1, FailurePolicy::KeepGoing, false).unwrap();
        assert!(!cached);
        assert_eq!(snap.exit_code, 1);
        // Same generation, but a failed snapshot must re-run, not cache.
        let (snap, cached) = r.build(1, FailurePolicy::KeepGoing, false).unwrap();
        assert!(!cached);
        assert_eq!(snap.exit_code, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
