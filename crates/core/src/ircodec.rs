//! Wire codec for the runtime IR.
//!
//! Bin bodies are the `pickle::wire` little-endian format end to end;
//! this module encodes the code object ([`Ir`]) the same way the
//! environment pickle is encoded, so a warm build parses zero JSON.
//! Every variant carries a one-byte tag; primitives are written by their
//! stable source name (the same convention the environment pickle uses
//! for `ValKind::Prim`), so reordering the `PrimOp` enum cannot corrupt
//! old archives.
//!
//! Any layout change here must bump
//! [`BIN_FORMAT_VERSION`](crate::unit::BIN_FORMAT_VERSION).

use smlsc_dynamics::ir::{ConTag, Ir, IrDec, IrPat, IrRule};
use smlsc_ids::Symbol;
use smlsc_pickle::wire::{Reader, Writer};
use smlsc_pickle::PickleError;
use smlsc_syntax::ast::PrimOp;

// Ir variant tags.
const IR_INT: u8 = 0;
const IR_STR: u8 = 1;
const IR_UNIT: u8 = 2;
const IR_LOCAL: u8 = 3;
const IR_IMPORT: u8 = 4;
const IR_SELECT: u8 = 5;
const IR_RECORD: u8 = 6;
const IR_TUPLE: u8 = 7;
const IR_CON: u8 = 8;
const IR_CONFN: u8 = 9;
const IR_APP: u8 = 10;
const IR_PRIM: u8 = 11;
const IR_FN: u8 = 12;
const IR_CASE: u8 = 13;
const IR_IF: u8 = 14;
const IR_LET: u8 = 15;
const IR_SEQ: u8 = 16;
const IR_RAISE: u8 = 17;
const IR_HANDLE: u8 = 18;
const IR_FUNCTOR: u8 = 19;

// IrPat variant tags.
const PAT_WILD: u8 = 0;
const PAT_VAR: u8 = 1;
const PAT_INT: u8 = 2;
const PAT_STR: u8 = 3;
const PAT_UNIT: u8 = 4;
const PAT_TUPLE: u8 = 5;
const PAT_CON: u8 = 6;
const PAT_EXN: u8 = 7;
const PAT_AS: u8 = 8;

// IrDec variant tags.
const DEC_VAL: u8 = 0;
const DEC_FIX: u8 = 1;
const DEC_EXCEPTION: u8 = 2;

fn corrupt(what: &str, tag: u8) -> PickleError {
    PickleError::Corrupt(format!("bad {what} tag {tag}"))
}

fn write_opt<T>(w: &mut Writer, v: Option<&T>, f: impl FnOnce(&mut Writer, &T)) {
    match v {
        None => w.u8(0),
        Some(x) => {
            w.u8(1);
            f(w, x);
        }
    }
}

fn read_opt<T>(
    r: &mut Reader<'_>,
    f: impl FnOnce(&mut Reader<'_>) -> Result<T, PickleError>,
) -> Result<Option<T>, PickleError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(f(r)?)),
        t => Err(corrupt("option", t)),
    }
}

fn write_contag(w: &mut Writer, c: &ConTag) {
    w.u32(c.tag);
    w.u32(c.span);
    w.u8(u8::from(c.has_arg));
    w.str(c.name.as_str());
}

fn read_contag(r: &mut Reader<'_>) -> Result<ConTag, PickleError> {
    Ok(ConTag {
        tag: r.u32()?,
        span: r.u32()?,
        has_arg: r.u8()? != 0,
        name: Symbol::intern(r.str_ref()?),
    })
}

fn write_prim(w: &mut Writer, op: PrimOp) {
    w.str(op.name());
}

fn read_prim(r: &mut Reader<'_>) -> Result<PrimOp, PickleError> {
    let name = r.str_ref()?;
    PrimOp::from_name(name)
        .ok_or_else(|| PickleError::Corrupt(format!("unknown primitive `{name}`")))
}

/// Writes one pattern.
pub fn write_pat(w: &mut Writer, p: &IrPat) {
    match p {
        IrPat::Wild => w.u8(PAT_WILD),
        IrPat::Var(v) => {
            w.u8(PAT_VAR);
            w.u32(*v);
        }
        IrPat::Int(i) => {
            w.u8(PAT_INT);
            w.i64(*i);
        }
        IrPat::Str(s) => {
            w.u8(PAT_STR);
            w.str(s);
        }
        IrPat::Unit => w.u8(PAT_UNIT),
        IrPat::Tuple(ps) => {
            w.u8(PAT_TUPLE);
            w.u32(ps.len() as u32);
            for p in ps {
                write_pat(w, p);
            }
        }
        IrPat::Con(c, arg) => {
            w.u8(PAT_CON);
            write_contag(w, c);
            write_opt(w, arg.as_deref(), write_pat);
        }
        IrPat::Exn(e, arg) => {
            w.u8(PAT_EXN);
            write_ir(w, e);
            write_opt(w, arg.as_deref(), write_pat);
        }
        IrPat::As(v, p) => {
            w.u8(PAT_AS);
            w.u32(*v);
            write_pat(w, p);
        }
    }
}

/// Reads one pattern.
///
/// # Errors
///
/// [`PickleError::Corrupt`] on malformed bytes.
pub fn read_pat(r: &mut Reader<'_>) -> Result<IrPat, PickleError> {
    Ok(match r.u8()? {
        PAT_WILD => IrPat::Wild,
        PAT_VAR => IrPat::Var(r.u32()?),
        PAT_INT => IrPat::Int(r.i64()?),
        PAT_STR => IrPat::Str(r.str()?),
        PAT_UNIT => IrPat::Unit,
        PAT_TUPLE => {
            let n = r.u32()? as usize;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(read_pat(r)?);
            }
            IrPat::Tuple(ps)
        }
        PAT_CON => {
            let c = read_contag(r)?;
            let arg = read_opt(r, read_pat)?;
            IrPat::Con(c, arg.map(Box::new))
        }
        PAT_EXN => {
            let e = read_ir(r)?;
            let arg = read_opt(r, read_pat)?;
            IrPat::Exn(Box::new(e), arg.map(Box::new))
        }
        PAT_AS => {
            let v = r.u32()?;
            let p = read_pat(r)?;
            IrPat::As(v, Box::new(p))
        }
        t => return Err(corrupt("pattern", t)),
    })
}

fn write_rules(w: &mut Writer, rs: &[IrRule]) {
    w.u32(rs.len() as u32);
    for rule in rs {
        write_pat(w, &rule.pat);
        write_ir(w, &rule.body);
    }
}

fn read_rules(r: &mut Reader<'_>) -> Result<Vec<IrRule>, PickleError> {
    let n = r.u32()? as usize;
    let mut rs = Vec::with_capacity(n);
    for _ in 0..n {
        let pat = read_pat(r)?;
        let body = read_ir(r)?;
        rs.push(IrRule { pat, body });
    }
    Ok(rs)
}

fn write_dec(w: &mut Writer, d: &IrDec) {
    match d {
        IrDec::Val(p, e) => {
            w.u8(DEC_VAL);
            write_pat(w, p);
            write_ir(w, e);
        }
        IrDec::Fix(fs) => {
            w.u8(DEC_FIX);
            w.u32(fs.len() as u32);
            for (v, rs) in fs {
                w.u32(*v);
                write_rules(w, rs);
            }
        }
        IrDec::Exception {
            lvar,
            name,
            has_arg,
        } => {
            w.u8(DEC_EXCEPTION);
            w.u32(*lvar);
            w.str(name.as_str());
            w.u8(u8::from(*has_arg));
        }
    }
}

fn read_dec(r: &mut Reader<'_>) -> Result<IrDec, PickleError> {
    Ok(match r.u8()? {
        DEC_VAL => {
            let p = read_pat(r)?;
            let e = read_ir(r)?;
            IrDec::Val(p, e)
        }
        DEC_FIX => {
            let n = r.u32()? as usize;
            let mut fs = Vec::with_capacity(n);
            for _ in 0..n {
                let v = r.u32()?;
                let rs = read_rules(r)?;
                fs.push((v, rs));
            }
            IrDec::Fix(fs)
        }
        DEC_EXCEPTION => IrDec::Exception {
            lvar: r.u32()?,
            name: Symbol::intern(r.str_ref()?),
            has_arg: r.u8()? != 0,
        },
        t => return Err(corrupt("declaration", t)),
    })
}

/// Writes one expression.
pub fn write_ir(w: &mut Writer, ir: &Ir) {
    match ir {
        Ir::Int(i) => {
            w.u8(IR_INT);
            w.i64(*i);
        }
        Ir::Str(s) => {
            w.u8(IR_STR);
            w.str(s);
        }
        Ir::Unit => w.u8(IR_UNIT),
        Ir::Local(v) => {
            w.u8(IR_LOCAL);
            w.u32(*v);
        }
        Ir::Import(i) => {
            w.u8(IR_IMPORT);
            w.u32(*i);
        }
        Ir::Select(e, slot) => {
            w.u8(IR_SELECT);
            write_ir(w, e);
            w.u32(*slot);
        }
        Ir::Record(es) => {
            w.u8(IR_RECORD);
            write_many(w, es);
        }
        Ir::Tuple(es) => {
            w.u8(IR_TUPLE);
            write_many(w, es);
        }
        Ir::Con(c, arg) => {
            w.u8(IR_CON);
            write_contag(w, c);
            write_opt(w, arg.as_deref(), write_ir);
        }
        Ir::ConFn(c) => {
            w.u8(IR_CONFN);
            write_contag(w, c);
        }
        Ir::App(f, a) => {
            w.u8(IR_APP);
            write_ir(w, f);
            write_ir(w, a);
        }
        Ir::Prim(op, es) => {
            w.u8(IR_PRIM);
            write_prim(w, *op);
            write_many(w, es);
        }
        Ir::Fn(rs) => {
            w.u8(IR_FN);
            write_rules(w, rs);
        }
        Ir::Case(e, rs) => {
            w.u8(IR_CASE);
            write_ir(w, e);
            write_rules(w, rs);
        }
        Ir::If(a, b, c) => {
            w.u8(IR_IF);
            write_ir(w, a);
            write_ir(w, b);
            write_ir(w, c);
        }
        Ir::Let(ds, b) => {
            w.u8(IR_LET);
            w.u32(ds.len() as u32);
            for d in ds {
                write_dec(w, d);
            }
            write_ir(w, b);
        }
        Ir::Seq(es) => {
            w.u8(IR_SEQ);
            write_many(w, es);
        }
        Ir::Raise(e) => {
            w.u8(IR_RAISE);
            write_ir(w, e);
        }
        Ir::Handle(e, rs) => {
            w.u8(IR_HANDLE);
            write_ir(w, e);
            write_rules(w, rs);
        }
        Ir::Functor { param, body } => {
            w.u8(IR_FUNCTOR);
            w.u32(*param);
            write_ir(w, body);
        }
    }
}

fn write_many(w: &mut Writer, es: &[Ir]) {
    w.u32(es.len() as u32);
    for e in es {
        write_ir(w, e);
    }
}

fn read_many(r: &mut Reader<'_>) -> Result<Vec<Ir>, PickleError> {
    let n = r.u32()? as usize;
    let mut es = Vec::with_capacity(n);
    for _ in 0..n {
        es.push(read_ir(r)?);
    }
    Ok(es)
}

/// Reads one expression.
///
/// # Errors
///
/// [`PickleError::Corrupt`] on malformed bytes.
pub fn read_ir(r: &mut Reader<'_>) -> Result<Ir, PickleError> {
    Ok(match r.u8()? {
        IR_INT => Ir::Int(r.i64()?),
        IR_STR => Ir::Str(r.str()?),
        IR_UNIT => Ir::Unit,
        IR_LOCAL => Ir::Local(r.u32()?),
        IR_IMPORT => Ir::Import(r.u32()?),
        IR_SELECT => {
            let e = read_ir(r)?;
            let slot = r.u32()?;
            Ir::Select(Box::new(e), slot)
        }
        IR_RECORD => Ir::Record(read_many(r)?),
        IR_TUPLE => Ir::Tuple(read_many(r)?),
        IR_CON => {
            let c = read_contag(r)?;
            let arg = read_opt(r, read_ir)?;
            Ir::Con(c, arg.map(Box::new))
        }
        IR_CONFN => Ir::ConFn(read_contag(r)?),
        IR_APP => {
            let f = read_ir(r)?;
            let a = read_ir(r)?;
            Ir::App(Box::new(f), Box::new(a))
        }
        IR_PRIM => {
            let op = read_prim(r)?;
            let es = read_many(r)?;
            Ir::Prim(op, es)
        }
        IR_FN => Ir::Fn(read_rules(r)?),
        IR_CASE => {
            let e = read_ir(r)?;
            let rs = read_rules(r)?;
            Ir::Case(Box::new(e), rs)
        }
        IR_IF => {
            let a = read_ir(r)?;
            let b = read_ir(r)?;
            let c = read_ir(r)?;
            Ir::If(Box::new(a), Box::new(b), Box::new(c))
        }
        IR_LET => {
            let n = r.u32()? as usize;
            let mut ds = Vec::with_capacity(n);
            for _ in 0..n {
                ds.push(read_dec(r)?);
            }
            let b = read_ir(r)?;
            Ir::Let(ds, Box::new(b))
        }
        IR_SEQ => Ir::Seq(read_many(r)?),
        IR_RAISE => Ir::Raise(Box::new(read_ir(r)?)),
        IR_HANDLE => {
            let e = read_ir(r)?;
            let rs = read_rules(r)?;
            Ir::Handle(Box::new(e), rs)
        }
        IR_FUNCTOR => {
            let param = r.u32()?;
            let body = read_ir(r)?;
            Ir::Functor {
                param,
                body: Box::new(body),
            }
        }
        t => return Err(corrupt("expression", t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(ir: &Ir) {
        let mut w = Writer::new();
        write_ir(&mut w, ir);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let back = read_ir(&mut r).unwrap();
        assert!(r.at_end(), "trailing bytes after {ir:?}");
        assert_eq!(&back, ir);
    }

    fn tag(t: u32) -> ConTag {
        ConTag {
            tag: t,
            span: 2,
            has_arg: t == 0,
            name: Symbol::intern(if t == 0 { "Leaf" } else { "Node" }),
        }
    }

    #[test]
    fn every_expression_variant_round_trips() {
        let rules = vec![
            IrRule {
                pat: IrPat::Con(tag(0), Some(Box::new(IrPat::Var(1)))),
                body: Ir::Local(1),
            },
            IrRule {
                pat: IrPat::Wild,
                body: Ir::Int(0),
            },
        ];
        let cases = vec![
            Ir::Int(-7),
            Ir::Str("héllo\nworld".into()),
            Ir::Unit,
            Ir::Local(3),
            Ir::Import(2),
            Ir::Select(Box::new(Ir::Import(0)), 4),
            Ir::Record(vec![Ir::Int(1), Ir::Unit]),
            Ir::Tuple(vec![Ir::Str("x".into())]),
            Ir::Con(tag(0), Some(Box::new(Ir::Int(9)))),
            Ir::Con(tag(1), None),
            Ir::ConFn(tag(0)),
            Ir::App(Box::new(Ir::Local(0)), Box::new(Ir::Int(1))),
            Ir::Prim(PrimOp::Add, vec![Ir::Int(1), Ir::Int(2)]),
            Ir::Fn(rules.clone()),
            Ir::Case(Box::new(Ir::Local(2)), rules.clone()),
            Ir::If(
                Box::new(Ir::Int(1)),
                Box::new(Ir::Int(2)),
                Box::new(Ir::Int(3)),
            ),
            Ir::Let(
                vec![
                    IrDec::Val(IrPat::Var(0), Ir::Int(5)),
                    IrDec::Fix(vec![(1, rules.clone())]),
                    IrDec::Exception {
                        lvar: 2,
                        name: Symbol::intern("Oops"),
                        has_arg: true,
                    },
                ],
                Box::new(Ir::Local(0)),
            ),
            Ir::Seq(vec![Ir::Unit, Ir::Int(1)]),
            Ir::Raise(Box::new(Ir::Local(2))),
            Ir::Handle(Box::new(Ir::Int(1)), rules.clone()),
            Ir::Functor {
                param: 0,
                body: Box::new(Ir::Record(vec![Ir::Local(0)])),
            },
        ];
        for ir in &cases {
            round_trip(ir);
        }
        // And one deeply mixed expression covering every pattern variant.
        let all_pats = Ir::Case(
            Box::new(Ir::Local(0)),
            vec![
                IrRule {
                    pat: IrPat::Tuple(vec![
                        IrPat::Wild,
                        IrPat::Var(1),
                        IrPat::Int(-3),
                        IrPat::Str("s".into()),
                        IrPat::Unit,
                    ]),
                    body: Ir::Unit,
                },
                IrRule {
                    pat: IrPat::As(
                        2,
                        Box::new(IrPat::Exn(
                            Box::new(Ir::Local(3)),
                            Some(Box::new(IrPat::Var(4))),
                        )),
                    ),
                    body: Ir::Local(2),
                },
            ],
        );
        round_trip(&all_pats);
    }

    #[test]
    fn bad_tags_are_corrupt_not_panics() {
        for bytes in [[0xffu8].as_slice(), &[IR_PRIM, 3, 0, 0, 0, b'z', b'z']] {
            let mut r = Reader::new(bytes);
            assert!(read_ir(&mut r).is_err());
        }
    }
}
