//! The indexed bin archive: one `bins.pack` instead of N `*.bin` reads.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------------------+  offset 0
//! | magic  "SMLSPAK2"  |  8 bytes
//! | version            |  1 byte  (PACK_VERSION)
//! +--------------------+  offset 9
//! | body 0             |  each body is one BinFile::to_bytes() blob
//! | body 1             |
//! | ...                |
//! +--------------------+  index_offset
//! | index (binary)     |  string table + flat import-edge table +
//! |                    |  fixed-width entry table (see below)
//! +--------------------+  index_offset + index_len
//! | footer (40 bytes)  |  index_offset u64 | index_len u64 |
//! |                    |  index_digest u128 | magic "SMLSPKI1"
//! +--------------------+  EOF
//! ```
//!
//! The index is the `pickle::wire` little-endian format, not JSON:
//!
//! ```text
//! u32 nstrings; nstrings × (u32 len | bytes)     -- interned name table
//! u32 nedges;   nedges   × (u32 name_ix | u128 pid)
//! u32 nentries; nentries × entry                 -- 84 bytes each, fixed
//!   entry = u32 name_ix | u128 source_pid | u128 export_pid | u64 mtime
//!         | u64 offset | u64 len | u128 digest
//!         | u32 edges_start | u32 edges_count
//! ```
//!
//! `load_bins` reads only the footer and index — two small positioned
//! reads no matter how many units the project has — and every rebuild
//! decision runs off index metadata alone; symbols are interned straight
//! from the index buffer.  Bodies are `pread` out lock-free, digest
//! verified, and parsed lazily on first use (rehydration, linking); a
//! torn body therefore quarantines exactly one unit, exactly when it is
//! actually needed.
//!
//! Version 1 packs (`SMLSPAK1`, JSON index) are still readable; a loader
//! that sees one reports `version() < PACK_VERSION` so the caller can
//! rewrite the archive in the current format on the next save.
//!
//! Writers stage a temp file (pid- and sequence-unique, see
//! [`crate::fsutil::unique_tmp`]), fsync, `rename(2)` into place, and
//! fsync the parent directory, so a crash mid-save leaves the previous
//! pack intact and a completed save survives power loss.  The seal is
//! instrumented with the `pack.save` fault point (stages `begin`,
//! `staged`, `renamed`) for the crash-recovery harness.

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use smlsc_ids::{Pid, Symbol};
use smlsc_pickle::wire::{Reader, Writer};
use smlsc_trace::{self as trace, names};

use crate::unit::{BinMeta, ImportEdge};
use crate::CoreError;

/// The archive's file name inside a bin directory.
pub const PACK_FILE: &str = "bins.pack";

/// Current version byte after the leading magic.  Readers also accept
/// [`LEGACY_PACK_VERSION`]; anything else rejects the pack (the units
/// then just recompile, or load from legacy `*.bin` files).
pub const PACK_VERSION: u8 = 2;
/// The JSON-index format this repo shipped first; still readable.
pub const LEGACY_PACK_VERSION: u8 = 1;

const PACK_MAGIC: &[u8; 8] = b"SMLSPAK2";
const LEGACY_PACK_MAGIC: &[u8; 8] = b"SMLSPAK1";
const FOOTER_MAGIC: &[u8; 8] = b"SMLSPKI1";
/// index_offset (8) + index_len (8) + index_digest (16) + magic (8).
const FOOTER_LEN: u64 = 40;
/// magic (8) + version (1).
const HEADER_LEN: u64 = 9;

/// One unit's slot in the footer index: the full decision metadata plus
/// the location and digest of its serialized body.  The serde derives
/// exist only for the version-1 JSON index; version 2 encodes entries
/// with the fixed-width wire layout above.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackEntry {
    /// The unit's name.
    pub name: Symbol,
    /// Digest of the source the unit was compiled from.
    pub source_pid: Pid,
    /// Imports in slot order.
    pub imports: Vec<ImportEdge>,
    /// The exported interface's intrinsic pid.
    pub export_pid: Pid,
    /// Virtual mtime of the bin (timestamp strategy).
    pub mtime: u64,
    /// Byte offset of the body within the pack.
    pub offset: u64,
    /// Byte length of the body.
    pub len: u64,
    /// Digest of the body bytes; verified before the body is parsed.
    pub digest: Pid,
}

impl PackEntry {
    /// The entry's decision metadata.
    pub fn meta(&self) -> BinMeta {
        BinMeta {
            name: self.name,
            source_pid: self.source_pid,
            imports: self.imports.clone(),
            export_pid: self.export_pid,
            mtime: self.mtime,
        }
    }
}

/// Encodes the version-2 binary index: string table, flat edge table,
/// fixed-width entry table.
fn encode_index(entries: &[PackEntry]) -> Vec<u8> {
    let mut strings: Vec<Symbol> = Vec::new();
    let mut string_ix: std::collections::HashMap<Symbol, u32> = std::collections::HashMap::new();
    let mut intern = |s: Symbol| -> u32 {
        *string_ix.entry(s).or_insert_with(|| {
            strings.push(s);
            (strings.len() - 1) as u32
        })
    };
    // First-appearance order: entry names, then their import names.
    let mut edges: Vec<(u32, Pid)> = Vec::new();
    let mut slots: Vec<(u32, u32, u32)> = Vec::with_capacity(entries.len());
    for e in entries {
        let name_ix = intern(e.name);
        let start = edges.len() as u32;
        for i in &e.imports {
            edges.push((intern(i.unit), i.pid));
        }
        slots.push((name_ix, start, e.imports.len() as u32));
    }
    let mut w = Writer::new();
    w.u32(strings.len() as u32);
    for s in &strings {
        w.str(s.as_str());
    }
    w.u32(edges.len() as u32);
    for (ix, pid) in &edges {
        w.u32(*ix);
        w.u128(pid.as_raw());
    }
    w.u32(entries.len() as u32);
    for (e, (name_ix, start, count)) in entries.iter().zip(&slots) {
        w.u32(*name_ix);
        w.u128(e.source_pid.as_raw());
        w.u128(e.export_pid.as_raw());
        w.u64(e.mtime);
        w.u64(e.offset);
        w.u64(e.len);
        w.u128(e.digest.as_raw());
        w.u32(*start);
        w.u32(*count);
    }
    w.into_bytes()
}

/// Decodes the version-2 binary index.  Symbols intern straight from the
/// buffer; nothing else allocates beyond the entry vector itself.
fn decode_index(bytes: &[u8]) -> Result<Vec<PackEntry>, String> {
    let mut r = Reader::new(bytes);
    let err = |e: smlsc_pickle::PickleError| e.to_string();
    let nstrings = r.u32().map_err(err)? as usize;
    let mut strings = Vec::with_capacity(nstrings);
    for _ in 0..nstrings {
        strings.push(Symbol::intern(r.str_ref().map_err(err)?));
    }
    let nedges = r.u32().map_err(err)? as usize;
    let mut edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let ix = r.u32().map_err(err)? as usize;
        let pid = Pid::from_raw(r.u128().map_err(err)?);
        let unit = *strings
            .get(ix)
            .ok_or_else(|| format!("edge name index {ix} out of range"))?;
        edges.push(ImportEdge { unit, pid });
    }
    let nentries = r.u32().map_err(err)? as usize;
    let mut entries = Vec::with_capacity(nentries);
    for _ in 0..nentries {
        let name_ix = r.u32().map_err(err)? as usize;
        let source_pid = Pid::from_raw(r.u128().map_err(err)?);
        let export_pid = Pid::from_raw(r.u128().map_err(err)?);
        let mtime = r.u64().map_err(err)?;
        let offset = r.u64().map_err(err)?;
        let len = r.u64().map_err(err)?;
        let digest = Pid::from_raw(r.u128().map_err(err)?);
        let edges_start = r.u32().map_err(err)? as usize;
        let edges_count = r.u32().map_err(err)? as usize;
        let name = *strings
            .get(name_ix)
            .ok_or_else(|| format!("entry name index {name_ix} out of range"))?;
        let end = edges_start
            .checked_add(edges_count)
            .filter(|&end| end <= edges.len())
            .ok_or_else(|| format!("entry `{name}` edge range out of bounds"))?;
        entries.push(PackEntry {
            name,
            source_pid,
            imports: edges[edges_start..end].to_vec(),
            export_pid,
            mtime,
            offset,
            len,
            digest,
        });
    }
    if !r.at_end() {
        return Err("trailing bytes after entry table".into());
    }
    Ok(entries)
}

/// Positioned read without seeking — lock-free body slicing.
#[cfg(unix)]
fn read_exact_at(file: &std::fs::File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(windows)]
fn read_exact_at(file: &std::fs::File, mut buf: &mut [u8], mut offset: u64) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        match file.seek_read(buf, offset) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "failed to fill whole buffer",
                ))
            }
            Ok(n) => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// An open pack: the parsed index plus a shared handle for body reads.
///
/// When the platform supports it the whole file is memory-mapped
/// read-only ([`smlsc_mmap::Mapping`]): the index decodes straight out
/// of the page cache with no heap copy of the raw bytes, and body
/// slices are borrowed from the map instead of `pread`.  Every byte is
/// still digest-verified exactly as on the fallback path, so torn and
/// corrupt packs quarantine identically either way (`SMLSC_NO_MMAP=1`
/// forces the fallback to prove it).
#[derive(Debug)]
pub struct PackReader {
    path: PathBuf,
    file: std::fs::File,
    map: Option<smlsc_mmap::Mapping>,
    version: u8,
    entries: Vec<PackEntry>,
}

impl PackReader {
    /// Opens `path`, reading and validating only the header, footer and
    /// index (never a body).  Returns `Ok(None)` when the file does not
    /// exist.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptBin`] when the header, footer, index digest,
    /// or any entry's bounds are malformed — the whole pack is then
    /// unusable (callers fall back to recompiling), but this is the only
    /// failure mode that is not per-unit.
    pub fn open(path: &Path) -> Result<Option<PackReader>, CoreError> {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CoreError::Io(format!("{}: {e}", path.display()))),
        };
        let total = file
            .metadata()
            .map_err(|e| CoreError::Io(format!("{}: {e}", path.display())))?
            .len();
        let corrupt = |m: String| CoreError::CorruptBin(format!("{}: {m}", path.display()));
        if total < HEADER_LEN + FOOTER_LEN {
            return Err(corrupt(format!("truncated ({total} bytes)")));
        }
        let map = smlsc_mmap::Mapping::map(&file, total);
        let mut header = [0u8; HEADER_LEN as usize];
        let mut footer = [0u8; FOOTER_LEN as usize];
        if let Some(m) = &map {
            header.copy_from_slice(&m.bytes()[..HEADER_LEN as usize]);
            footer.copy_from_slice(&m.bytes()[(total - FOOTER_LEN) as usize..]);
        } else {
            read_exact_at(&file, &mut header, 0).map_err(|e| corrupt(e.to_string()))?;
            read_exact_at(&file, &mut footer, total - FOOTER_LEN)
                .map_err(|e| corrupt(e.to_string()))?;
        }
        let version = match (&header[..8], header[8]) {
            (m, PACK_VERSION) if m == PACK_MAGIC => PACK_VERSION,
            (m, LEGACY_PACK_VERSION) if m == LEGACY_PACK_MAGIC => LEGACY_PACK_VERSION,
            (m, v) if m == PACK_MAGIC || m == LEGACY_PACK_MAGIC => {
                return Err(corrupt(format!(
                    "unsupported pack version {v} (expected {PACK_VERSION})"
                )))
            }
            _ => return Err(corrupt("bad magic".into())),
        };
        // Footer fields: [0..8) offset, [8..16) len, [16..32) digest,
        // [32..40) magic.
        if &footer[32..40] != FOOTER_MAGIC {
            return Err(corrupt("bad footer magic".into()));
        }
        let index_offset = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let index_len = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
        let index_digest = Pid::from_raw(u128::from_le_bytes(
            footer[16..32].try_into().expect("16 bytes"),
        ));
        if index_offset < HEADER_LEN
            || index_offset
                .checked_add(index_len)
                .is_none_or(|end| end != total - FOOTER_LEN)
        {
            return Err(corrupt("index bounds out of range".into()));
        }
        // Mapped: the index is decoded in place, page-cache-resident,
        // with no heap copy of the raw bytes.  Fallback: one positioned
        // read into a scratch vector.
        let mut scratch;
        let index_bytes: &[u8] = if let Some(m) = &map {
            &m.bytes()[index_offset as usize..(index_offset + index_len) as usize]
        } else {
            scratch = vec![
                0u8;
                usize::try_from(index_len)
                    .map_err(|_| { corrupt("index too large".into()) })?
            ];
            read_exact_at(&file, &mut scratch, index_offset).map_err(|e| corrupt(e.to_string()))?;
            &scratch
        };
        trace::counter(names::BIN_BYTES_READ, HEADER_LEN + FOOTER_LEN + index_len);
        if Pid::of_bytes(index_bytes) != index_digest {
            return Err(corrupt("index digest mismatch".into()));
        }
        let entries: Vec<PackEntry> = if version == PACK_VERSION {
            decode_index(index_bytes).map_err(|e| corrupt(format!("index parse: {e}")))?
        } else {
            serde_json::from_slice(index_bytes).map_err(|e| corrupt(format!("index parse: {e}")))?
        };
        for e in &entries {
            if e.offset < HEADER_LEN
                || e.offset
                    .checked_add(e.len)
                    .is_none_or(|end| end > index_offset)
            {
                return Err(corrupt(format!("entry `{}` bounds out of range", e.name)));
            }
        }
        Ok(Some(PackReader {
            path: path.to_path_buf(),
            file,
            map,
            version,
            entries,
        }))
    }

    /// The pack's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The on-disk format version ([`PACK_VERSION`] or
    /// [`LEGACY_PACK_VERSION`]).  A legacy pack still loads; callers use
    /// this to schedule a rewrite in the current format on the next save.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The parsed index.
    pub fn entries(&self) -> &[PackEntry] {
        &self.entries
    }

    /// Reads and digest-verifies one body slice with a positioned read —
    /// no seek, no lock, safe to call from many workers at once.  The
    /// `Err` string names the failure; callers wrap it in
    /// [`CoreError::BinBodyCorrupt`].
    ///
    /// # Errors
    ///
    /// A description of the IO failure or digest mismatch.
    pub fn read_body(&self, offset: u64, len: u64, digest: Pid) -> Result<Vec<u8>, String> {
        let buf = if let Some(m) = &self.map {
            let start = usize::try_from(offset).map_err(|_| "body too large".to_string())?;
            let n = usize::try_from(len).map_err(|_| "body too large".to_string())?;
            // Bounds were validated against the index at open time, but
            // re-check against the map so a logic slip can never read
            // out of the mapping.
            let end = start
                .checked_add(n)
                .filter(|&end| end <= m.len())
                .ok_or_else(|| "body out of mapped range".to_string())?;
            m.bytes()[start..end].to_vec()
        } else {
            let mut buf =
                vec![0u8; usize::try_from(len).map_err(|_| "body too large".to_string())?];
            read_exact_at(&self.file, &mut buf, offset).map_err(|e| e.to_string())?;
            buf
        };
        trace::counter(names::BIN_BYTES_READ, len);
        let got = Pid::of_bytes(&buf);
        if got != digest {
            return Err(format!("body digest mismatch (want {digest}, got {got})"));
        }
        Ok(buf)
    }
}

/// An in-progress pack write: bodies appended one at a time, then the
/// index and footer sealed by [`PackWriter::finish`].  Dropping an
/// unfinished writer removes its temp file.
#[derive(Debug)]
pub struct PackWriter {
    tmp: PathBuf,
    dest: PathBuf,
    file: Option<std::fs::File>,
    cursor: u64,
    entries: Vec<PackEntry>,
}

impl PackWriter {
    /// Starts a pack write destined for `dest`, staging to a sibling
    /// temp file.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    pub fn create(dest: &Path) -> Result<PackWriter, CoreError> {
        let tmp = crate::fsutil::unique_tmp(dest);
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| CoreError::Io(format!("{}: {e}", tmp.display())))?;
        file.write_all(PACK_MAGIC)
            .and_then(|()| file.write_all(&[PACK_VERSION]))
            .map_err(|e| CoreError::Io(format!("{}: {e}", tmp.display())))?;
        Ok(PackWriter {
            tmp,
            dest: dest.to_path_buf(),
            file: Some(file),
            cursor: HEADER_LEN,
            entries: Vec::new(),
        })
    }

    /// Appends one unit's body and records its index entry.  `digest`
    /// must be the digest of the *intended* bytes — fault-injection
    /// callers deliberately pass mangled `body` bytes with the true
    /// digest, simulating a torn non-atomic write that the lazy
    /// verification must catch later.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    pub fn add(&mut self, meta: &BinMeta, body: &[u8], digest: Pid) -> Result<(), CoreError> {
        let file = self.file.as_mut().expect("writer not finished");
        file.write_all(body)
            .map_err(|e| CoreError::Io(format!("{}: {e}", self.tmp.display())))?;
        self.entries.push(PackEntry {
            name: meta.name,
            source_pid: meta.source_pid,
            imports: meta.imports.clone(),
            export_pid: meta.export_pid,
            mtime: meta.mtime,
            offset: self.cursor,
            len: body.len() as u64,
            digest,
        });
        self.cursor += body.len() as u64;
        Ok(())
    }

    /// Seals the pack: writes the index and footer, fsyncs, and renames
    /// into place.  Returns the total bytes written.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures (the temp file is
    /// removed; the previous pack, if any, is untouched).
    pub fn finish(mut self) -> Result<u64, CoreError> {
        use smlsc_faults::{self as faults, points, FaultKind};
        let name = self
            .dest
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let fail = |msg: String, tmp: &mut PathBuf, file: Option<std::fs::File>| {
            drop(file);
            std::fs::remove_file(&*tmp).ok();
            tmp.clear(); // Drop must not re-remove
            CoreError::Io(msg)
        };
        // A crash here leaves a body-only tmp file: litter, never
        // visible at the destination.
        if let Some(FaultKind::Io) = faults::check(points::PACK_SAVE, &format!("begin {name}")) {
            let file = self.file.take();
            return Err(fail(
                faults::io_error(points::PACK_SAVE, &name).to_string(),
                &mut self.tmp,
                file,
            ));
        }
        let mut file = self.file.take().expect("writer not finished");
        let index = encode_index(&self.entries);
        let index_digest = Pid::of_bytes(&index);
        let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
        footer.extend_from_slice(&self.cursor.to_le_bytes());
        footer.extend_from_slice(&(index.len() as u64).to_le_bytes());
        footer.extend_from_slice(&index_digest.as_raw().to_le_bytes());
        footer.extend_from_slice(FOOTER_MAGIC);
        let total = self.cursor + index.len() as u64 + FOOTER_LEN;
        let sealed = file
            .write_all(&index)
            .and_then(|()| file.write_all(&footer))
            .and_then(|()| file.sync_all());
        if let Err(e) = sealed {
            let msg = format!("{}: {e}", self.tmp.display());
            return Err(fail(msg, &mut self.tmp, Some(file)));
        }
        drop(file);
        // A crash here leaves a *complete* tmp pack, never renamed.
        if let Some(FaultKind::Io) = faults::check(points::PACK_SAVE, &format!("staged {name}")) {
            return Err(fail(
                faults::io_error(points::PACK_SAVE, &name).to_string(),
                &mut self.tmp,
                None,
            ));
        }
        if let Err(e) = std::fs::rename(&self.tmp, &self.dest) {
            let msg = format!("{}: {e}", self.dest.display());
            return Err(fail(msg, &mut self.tmp, None));
        }
        // A crash here dies after the rename but before the parent
        // directory fsync makes it durable.
        faults::check(points::PACK_SAVE, &format!("renamed {name}"));
        if let Some(dir) = self.dest.parent() {
            crate::fsutil::fsync_dir(dir)
                .map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
        }
        self.tmp.clear();
        Ok(total)
    }
}

impl Drop for PackWriter {
    fn drop(&mut self) {
        if !self.tmp.as_os_str().is_empty() && self.file.is_some() {
            self.file = None;
            std::fs::remove_file(&self.tmp).ok();
        }
    }
}

/// Writes a version-1 pack (`SMLSPAK1`, JSON index) for migration tests.
/// Not used by any production path — the writer always emits the current
/// format.
#[doc(hidden)]
pub fn write_legacy_v1_pack(dest: &Path, items: &[(BinMeta, Vec<u8>)]) -> Result<(), CoreError> {
    let io_err = |e: std::io::Error| CoreError::Io(format!("{}: {e}", dest.display()));
    let mut out: Vec<u8> = Vec::new();
    out.extend_from_slice(LEGACY_PACK_MAGIC);
    out.push(LEGACY_PACK_VERSION);
    let mut entries = Vec::with_capacity(items.len());
    for (meta, body) in items {
        let offset = out.len() as u64;
        out.extend_from_slice(body);
        entries.push(PackEntry {
            name: meta.name,
            source_pid: meta.source_pid,
            imports: meta.imports.clone(),
            export_pid: meta.export_pid,
            mtime: meta.mtime,
            offset,
            len: body.len() as u64,
            digest: Pid::of_bytes(body),
        });
    }
    let index = serde_json::to_vec(&entries).expect("pack entries serialize");
    let index_offset = out.len() as u64;
    out.extend_from_slice(&index);
    out.extend_from_slice(&index_offset.to_le_bytes());
    out.extend_from_slice(&(index.len() as u64).to_le_bytes());
    out.extend_from_slice(&Pid::of_bytes(&index).as_raw().to_le_bytes());
    out.extend_from_slice(FOOTER_MAGIC);
    let tmp = crate::fsutil::unique_tmp(dest);
    std::fs::write(&tmp, &out).map_err(io_err)?;
    std::fs::rename(&tmp, dest).map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{BinFile, CompiledUnit};
    use smlsc_dynamics::ir::Ir;

    fn bin(name: &str, mtime: u64) -> BinFile {
        BinFile {
            unit: CompiledUnit {
                name: Symbol::intern(name),
                source_pid: Pid::of_bytes(name.as_bytes()),
                imports: vec![ImportEdge {
                    unit: Symbol::intern("dep"),
                    pid: Pid::of_bytes(b"dep-exports"),
                }],
                export_pid: Pid::of_bytes(b"exports"),
                env_pickle: vec![7; 64],
                code: Ir::Int(1),
            },
            mtime,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "smlsc-pack-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_two(dir: &Path) -> PathBuf {
        let path = dir.join(PACK_FILE);
        let mut w = PackWriter::create(&path).unwrap();
        for (name, mtime) in [("a", 10), ("b", 20)] {
            let b = bin(name, mtime);
            let bytes = b.to_bytes();
            w.add(&b.meta(), &bytes, Pid::of_bytes(&bytes)).unwrap();
        }
        w.finish().unwrap();
        path
    }

    #[test]
    fn round_trip_index_and_bodies() {
        let dir = tmp_dir("roundtrip");
        let path = write_two(&dir);
        let r = PackReader::open(&path).unwrap().unwrap();
        assert_eq!(r.version(), PACK_VERSION);
        assert_eq!(r.entries().len(), 2);
        for e in r.entries() {
            let body = r.read_body(e.offset, e.len, e.digest).unwrap();
            let back = BinFile::from_bytes(&body).unwrap();
            assert_eq!(back.unit.name, e.name);
            assert_eq!(back.mtime, e.mtime);
            assert_eq!(back.unit.export_pid, e.export_pid);
            assert_eq!(back.unit.imports, e.imports);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absent_pack_is_none() {
        let dir = tmp_dir("absent");
        assert!(PackReader::open(&dir.join(PACK_FILE)).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_pack_still_loads() {
        let dir = tmp_dir("legacyv1");
        let path = dir.join(PACK_FILE);
        let items: Vec<(BinMeta, Vec<u8>)> = [("a", 10), ("b", 20)]
            .into_iter()
            .map(|(name, mtime)| {
                let b = bin(name, mtime);
                (b.meta(), b.to_bytes())
            })
            .collect();
        write_legacy_v1_pack(&path, &items).unwrap();
        let r = PackReader::open(&path).unwrap().unwrap();
        assert_eq!(r.version(), LEGACY_PACK_VERSION);
        assert_eq!(r.entries().len(), 2);
        for (e, (meta, body)) in r.entries().iter().zip(&items) {
            assert_eq!(e.name, meta.name);
            assert_eq!(e.imports, meta.imports);
            assert_eq!(&r.read_body(e.offset, e.len, e.digest).unwrap(), body);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_encoding_round_trips_shared_names() {
        let a = bin("a", 10);
        let entries = vec![
            PackEntry {
                name: a.unit.name,
                source_pid: a.unit.source_pid,
                imports: a.unit.imports.clone(),
                export_pid: a.unit.export_pid,
                mtime: 10,
                offset: HEADER_LEN,
                len: 64,
                digest: Pid::of_bytes(b"body-a"),
            },
            PackEntry {
                // "dep" also appears as an import of `a`: the string
                // table must share it.
                name: Symbol::intern("dep"),
                source_pid: Pid::of_bytes(b"dep-src"),
                imports: Vec::new(),
                export_pid: Pid::of_bytes(b"dep-exports"),
                mtime: 20,
                offset: HEADER_LEN + 64,
                len: 32,
                digest: Pid::of_bytes(b"body-dep"),
            },
        ];
        let bytes = encode_index(&entries);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        for (e, b) in entries.iter().zip(&back) {
            assert_eq!(e.name, b.name);
            assert_eq!(e.source_pid, b.source_pid);
            assert_eq!(e.imports, b.imports);
            assert_eq!(e.export_pid, b.export_pid);
            assert_eq!(e.mtime, b.mtime);
            assert_eq!(e.offset, b.offset);
            assert_eq!(e.len, b.len);
            assert_eq!(e.digest, b.digest);
        }
        // Three distinct strings: a, dep (shared), and nothing else.
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 2, "string table must dedupe `dep`");
    }

    /// Golden bytes for the binary index encoder, mirroring the
    /// `Digest128` golden tests: a failure here means "you changed the
    /// on-disk index layout", not "update the constants" — bump
    /// `PACK_VERSION` instead.
    #[test]
    fn golden_index_bytes_are_stable() {
        let entries = vec![PackEntry {
            name: Symbol::intern("M0"),
            source_pid: Pid::from_raw(0x1111),
            imports: vec![ImportEdge {
                unit: Symbol::intern("M1"),
                pid: Pid::from_raw(0x2222),
            }],
            export_pid: Pid::from_raw(0x3333),
            mtime: 7,
            offset: 9,
            len: 5,
            digest: Pid::from_raw(0x4444),
        }];
        let got = encode_index(&entries);
        let want: Vec<u8> = {
            let mut w = Vec::new();
            w.extend_from_slice(&2u32.to_le_bytes()); // 2 strings
            w.extend_from_slice(&2u32.to_le_bytes());
            w.extend_from_slice(b"M0");
            w.extend_from_slice(&2u32.to_le_bytes());
            w.extend_from_slice(b"M1");
            w.extend_from_slice(&1u32.to_le_bytes()); // 1 edge
            w.extend_from_slice(&1u32.to_le_bytes()); // -> "M1"
            w.extend_from_slice(&0x2222u128.to_le_bytes());
            w.extend_from_slice(&1u32.to_le_bytes()); // 1 entry
            w.extend_from_slice(&0u32.to_le_bytes()); // name "M0"
            w.extend_from_slice(&0x1111u128.to_le_bytes());
            w.extend_from_slice(&0x3333u128.to_le_bytes());
            w.extend_from_slice(&7u64.to_le_bytes());
            w.extend_from_slice(&9u64.to_le_bytes());
            w.extend_from_slice(&5u64.to_le_bytes());
            w.extend_from_slice(&0x4444u128.to_le_bytes());
            w.extend_from_slice(&0u32.to_le_bytes()); // edges_start
            w.extend_from_slice(&1u32.to_le_bytes()); // edges_count
            w
        };
        assert_eq!(got, want, "binary index layout changed");
        // Entry table width is part of the format: 84 bytes per entry.
        let strings_len = 4 + (4 + 2) + (4 + 2);
        let edges_len = 4 + (4 + 16);
        assert_eq!(got.len(), strings_len + edges_len + 4 + 84);
    }

    #[test]
    fn golden_empty_index_bytes_are_stable() {
        assert_eq!(encode_index(&[]), vec![0u8; 12], "empty index layout");
    }

    #[test]
    fn torn_body_fails_verification_but_index_loads() {
        let dir = tmp_dir("tornbody");
        let path = write_two(&dir);
        // Flip a byte inside the first body: the index (at the tail)
        // still verifies, only that body's digest check fails.
        let mut bytes = std::fs::read(&path).unwrap();
        let r = PackReader::open(&path).unwrap().unwrap();
        let e0 = r.entries()[0].clone();
        let e1 = r.entries()[1].clone();
        drop(r);
        bytes[e0.offset as usize + 4] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let r = PackReader::open(&path).unwrap().unwrap();
        assert!(r.read_body(e0.offset, e0.len, e0.digest).is_err());
        assert!(r.read_body(e1.offset, e1.len, e1.digest).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_footer_or_index_rejects_whole_pack() {
        let dir = tmp_dir("tornindex");
        let path = write_two(&dir);
        let good = std::fs::read(&path).unwrap();
        // Truncate into the footer.
        std::fs::write(&path, &good[..good.len() - 10]).unwrap();
        assert!(matches!(
            PackReader::open(&path),
            Err(CoreError::CorruptBin(_))
        ));
        // Flip a byte inside the binary index.
        let mut bytes = good.clone();
        let idx = bytes.len() - FOOTER_LEN as usize - 5;
        bytes[idx] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PackReader::open(&path),
            Err(CoreError::CorruptBin(_))
        ));
        // Wrong leading magic.
        let mut bytes = good.clone();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PackReader::open(&path),
            Err(CoreError::CorruptBin(_))
        ));
        // Wrong version byte.
        let mut bytes = good;
        bytes[8] = PACK_VERSION + 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PackReader::open(&path),
            Err(CoreError::CorruptBin(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_temp_files_survive() {
        let dir = tmp_dir("tmpfiles");
        write_two(&dir);
        // An aborted writer cleans up too.
        let w = PackWriter::create(&dir.join("other.pack")).unwrap();
        drop(w);
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec![PACK_FILE.to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
