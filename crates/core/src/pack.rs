//! The indexed bin archive: one `bins.pack` instead of N `*.bin` reads.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------------------+  offset 0
//! | magic  "SMLSPAK1"  |  8 bytes
//! | version            |  1 byte  (PACK_VERSION)
//! +--------------------+  offset 9
//! | body 0             |  each body is one BinFile::to_bytes() blob
//! | body 1             |
//! | ...                |
//! +--------------------+  index_offset
//! | index (JSON)       |  Vec<PackEntry>: per-unit name, source pid,
//! |                    |  import edges, export pid, mtime, body
//! |                    |  offset/len, body digest
//! +--------------------+  index_offset + index_len
//! | footer (40 bytes)  |  index_offset u64 | index_len u64 |
//! |                    |  index_digest u128 | magic "SMLSPKI1"
//! +--------------------+  EOF
//! ```
//!
//! `load_bins` reads only the footer and index — three small reads no
//! matter how many units the project has — and every rebuild decision
//! runs off index metadata alone.  Bodies are sliced out, digest
//! verified, and parsed lazily on first use (rehydration, linking); a
//! torn body therefore quarantines exactly one unit, exactly when it is
//! actually needed.
//!
//! Writers stage a temp file, fsync, and `rename(2)` into place (the
//! store's atomic-publication idiom), so a crash mid-save leaves the
//! previous pack intact.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use smlsc_ids::{Pid, Symbol};
use smlsc_trace::{self as trace, names};

use crate::unit::{BinMeta, ImportEdge};
use crate::CoreError;

/// The archive's file name inside a bin directory.
pub const PACK_FILE: &str = "bins.pack";

/// Version byte after the leading magic; a mismatch rejects the pack
/// (the units then just recompile, or load from legacy `*.bin` files).
pub const PACK_VERSION: u8 = 1;

const PACK_MAGIC: &[u8; 8] = b"SMLSPAK1";
const FOOTER_MAGIC: &[u8; 8] = b"SMLSPKI1";
/// index_offset (8) + index_len (8) + index_digest (16) + magic (8).
const FOOTER_LEN: u64 = 40;
/// magic (8) + version (1).
const HEADER_LEN: u64 = 9;

/// One unit's slot in the footer index: the full decision metadata plus
/// the location and digest of its serialized body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackEntry {
    /// The unit's name.
    pub name: Symbol,
    /// Digest of the source the unit was compiled from.
    pub source_pid: Pid,
    /// Imports in slot order.
    pub imports: Vec<ImportEdge>,
    /// The exported interface's intrinsic pid.
    pub export_pid: Pid,
    /// Virtual mtime of the bin (timestamp strategy).
    pub mtime: u64,
    /// Byte offset of the body within the pack.
    pub offset: u64,
    /// Byte length of the body.
    pub len: u64,
    /// Digest of the body bytes; verified before the body is parsed.
    pub digest: Pid,
}

impl PackEntry {
    /// The entry's decision metadata.
    pub fn meta(&self) -> BinMeta {
        BinMeta {
            name: self.name,
            source_pid: self.source_pid,
            imports: self.imports.clone(),
            export_pid: self.export_pid,
            mtime: self.mtime,
        }
    }
}

/// An open pack: the parsed index plus a shared handle for body reads.
#[derive(Debug)]
pub struct PackReader {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    entries: Vec<PackEntry>,
}

impl PackReader {
    /// Opens `path`, reading and validating only the header, footer and
    /// index (never a body).  Returns `Ok(None)` when the file does not
    /// exist.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptBin`] when the header, footer, index digest,
    /// or any entry's bounds are malformed — the whole pack is then
    /// unusable (callers fall back to recompiling), but this is the only
    /// failure mode that is not per-unit.
    pub fn open(path: &Path) -> Result<Option<PackReader>, CoreError> {
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CoreError::Io(format!("{}: {e}", path.display()))),
        };
        let total = file
            .metadata()
            .map_err(|e| CoreError::Io(format!("{}: {e}", path.display())))?
            .len();
        let corrupt = |m: String| CoreError::CorruptBin(format!("{}: {m}", path.display()));
        if total < HEADER_LEN + FOOTER_LEN {
            return Err(corrupt(format!("truncated ({total} bytes)")));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|e| corrupt(e.to_string()))?;
        if &header[..8] != PACK_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        if header[8] != PACK_VERSION {
            return Err(corrupt(format!(
                "unsupported pack version {} (expected {PACK_VERSION})",
                header[8]
            )));
        }
        let mut footer = [0u8; FOOTER_LEN as usize];
        file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))
            .map_err(|e| corrupt(e.to_string()))?;
        file.read_exact(&mut footer)
            .map_err(|e| corrupt(e.to_string()))?;
        // Footer fields: [0..8) offset, [8..16) len, [16..32) digest,
        // [32..40) magic.
        if &footer[32..40] != FOOTER_MAGIC {
            return Err(corrupt("bad footer magic".into()));
        }
        let index_offset = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes"));
        let index_len = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
        let index_digest = Pid::from_raw(u128::from_le_bytes(
            footer[16..32].try_into().expect("16 bytes"),
        ));
        if index_offset < HEADER_LEN
            || index_offset
                .checked_add(index_len)
                .is_none_or(|end| end != total - FOOTER_LEN)
        {
            return Err(corrupt("index bounds out of range".into()));
        }
        let mut index_bytes = vec![
            0u8;
            usize::try_from(index_len)
                .map_err(|_| { corrupt("index too large".into()) })?
        ];
        file.seek(SeekFrom::Start(index_offset))
            .map_err(|e| corrupt(e.to_string()))?;
        file.read_exact(&mut index_bytes)
            .map_err(|e| corrupt(e.to_string()))?;
        trace::counter(names::BIN_BYTES_READ, HEADER_LEN + FOOTER_LEN + index_len);
        if Pid::of_bytes(&index_bytes) != index_digest {
            return Err(corrupt("index digest mismatch".into()));
        }
        let entries: Vec<PackEntry> = serde_json::from_slice(&index_bytes)
            .map_err(|e| corrupt(format!("index parse: {e}")))?;
        for e in &entries {
            if e.offset < HEADER_LEN
                || e.offset
                    .checked_add(e.len)
                    .is_none_or(|end| end > index_offset)
            {
                return Err(corrupt(format!("entry `{}` bounds out of range", e.name)));
            }
        }
        Ok(Some(PackReader {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            entries,
        }))
    }

    /// The pack's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The parsed index.
    pub fn entries(&self) -> &[PackEntry] {
        &self.entries
    }

    /// Reads and digest-verifies one body slice.  The `Err` string names
    /// the failure; callers wrap it in [`CoreError::BinBodyCorrupt`].
    ///
    /// # Errors
    ///
    /// A description of the IO failure or digest mismatch.
    pub fn read_body(&self, offset: u64, len: u64, digest: Pid) -> Result<Vec<u8>, String> {
        let mut buf = vec![0u8; usize::try_from(len).map_err(|_| "body too large".to_string())?];
        {
            let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| e.to_string())?;
            file.read_exact(&mut buf).map_err(|e| e.to_string())?;
        }
        trace::counter(names::BIN_BYTES_READ, len);
        let got = Pid::of_bytes(&buf);
        if got != digest {
            return Err(format!("body digest mismatch (want {digest}, got {got})"));
        }
        Ok(buf)
    }
}

/// An in-progress pack write: bodies appended one at a time, then the
/// index and footer sealed by [`PackWriter::finish`].  Dropping an
/// unfinished writer removes its temp file.
#[derive(Debug)]
pub struct PackWriter {
    tmp: PathBuf,
    dest: PathBuf,
    file: Option<std::fs::File>,
    cursor: u64,
    entries: Vec<PackEntry>,
}

impl PackWriter {
    /// Starts a pack write destined for `dest`, staging to a sibling
    /// temp file.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    pub fn create(dest: &Path) -> Result<PackWriter, CoreError> {
        let tmp = dest.with_extension(format!("tmp-{}", std::process::id()));
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| CoreError::Io(format!("{}: {e}", tmp.display())))?;
        file.write_all(PACK_MAGIC)
            .and_then(|()| file.write_all(&[PACK_VERSION]))
            .map_err(|e| CoreError::Io(format!("{}: {e}", tmp.display())))?;
        Ok(PackWriter {
            tmp,
            dest: dest.to_path_buf(),
            file: Some(file),
            cursor: HEADER_LEN,
            entries: Vec::new(),
        })
    }

    /// Appends one unit's body and records its index entry.  `digest`
    /// must be the digest of the *intended* bytes — fault-injection
    /// callers deliberately pass mangled `body` bytes with the true
    /// digest, simulating a torn non-atomic write that the lazy
    /// verification must catch later.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    pub fn add(&mut self, meta: &BinMeta, body: &[u8], digest: Pid) -> Result<(), CoreError> {
        let file = self.file.as_mut().expect("writer not finished");
        file.write_all(body)
            .map_err(|e| CoreError::Io(format!("{}: {e}", self.tmp.display())))?;
        self.entries.push(PackEntry {
            name: meta.name,
            source_pid: meta.source_pid,
            imports: meta.imports.clone(),
            export_pid: meta.export_pid,
            mtime: meta.mtime,
            offset: self.cursor,
            len: body.len() as u64,
            digest,
        });
        self.cursor += body.len() as u64;
        Ok(())
    }

    /// Seals the pack: writes the index and footer, fsyncs, and renames
    /// into place.  Returns the total bytes written.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures (the temp file is
    /// removed; the previous pack, if any, is untouched).
    pub fn finish(mut self) -> Result<u64, CoreError> {
        let mut file = self.file.take().expect("writer not finished");
        let index = serde_json::to_vec(&self.entries).expect("pack entries serialize");
        let index_digest = Pid::of_bytes(&index);
        let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
        footer.extend_from_slice(&self.cursor.to_le_bytes());
        footer.extend_from_slice(&(index.len() as u64).to_le_bytes());
        footer.extend_from_slice(&index_digest.as_raw().to_le_bytes());
        footer.extend_from_slice(FOOTER_MAGIC);
        let total = self.cursor + index.len() as u64 + FOOTER_LEN;
        let sealed = file
            .write_all(&index)
            .and_then(|()| file.write_all(&footer))
            .and_then(|()| file.sync_all());
        if let Err(e) = sealed {
            let msg = format!("{}: {e}", self.tmp.display());
            drop(file);
            std::fs::remove_file(&self.tmp).ok();
            self.tmp.clear(); // Drop must not re-remove
            return Err(CoreError::Io(msg));
        }
        drop(file);
        if let Err(e) = std::fs::rename(&self.tmp, &self.dest) {
            let msg = format!("{}: {e}", self.dest.display());
            std::fs::remove_file(&self.tmp).ok();
            self.tmp.clear();
            return Err(CoreError::Io(msg));
        }
        self.tmp.clear();
        Ok(total)
    }
}

impl Drop for PackWriter {
    fn drop(&mut self) {
        if !self.tmp.as_os_str().is_empty() && self.file.is_some() {
            self.file = None;
            std::fs::remove_file(&self.tmp).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{BinFile, CompiledUnit};
    use smlsc_dynamics::ir::Ir;

    fn bin(name: &str, mtime: u64) -> BinFile {
        BinFile {
            unit: CompiledUnit {
                name: Symbol::intern(name),
                source_pid: Pid::of_bytes(name.as_bytes()),
                imports: vec![ImportEdge {
                    unit: Symbol::intern("dep"),
                    pid: Pid::of_bytes(b"dep-exports"),
                }],
                export_pid: Pid::of_bytes(b"exports"),
                env_pickle: vec![7; 64],
                code: Ir::Int(1),
            },
            mtime,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "smlsc-pack-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_two(dir: &Path) -> PathBuf {
        let path = dir.join(PACK_FILE);
        let mut w = PackWriter::create(&path).unwrap();
        for (name, mtime) in [("a", 10), ("b", 20)] {
            let b = bin(name, mtime);
            let bytes = b.to_bytes();
            w.add(&b.meta(), &bytes, Pid::of_bytes(&bytes)).unwrap();
        }
        w.finish().unwrap();
        path
    }

    #[test]
    fn round_trip_index_and_bodies() {
        let dir = tmp_dir("roundtrip");
        let path = write_two(&dir);
        let r = PackReader::open(&path).unwrap().unwrap();
        assert_eq!(r.entries().len(), 2);
        for e in r.entries() {
            let body = r.read_body(e.offset, e.len, e.digest).unwrap();
            let back = BinFile::from_bytes(&body).unwrap();
            assert_eq!(back.unit.name, e.name);
            assert_eq!(back.mtime, e.mtime);
            assert_eq!(back.unit.export_pid, e.export_pid);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absent_pack_is_none() {
        let dir = tmp_dir("absent");
        assert!(PackReader::open(&dir.join(PACK_FILE)).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_body_fails_verification_but_index_loads() {
        let dir = tmp_dir("tornbody");
        let path = write_two(&dir);
        // Flip a byte inside the first body: the index (at the tail)
        // still verifies, only that body's digest check fails.
        let mut bytes = std::fs::read(&path).unwrap();
        let r = PackReader::open(&path).unwrap().unwrap();
        let e0 = r.entries()[0].clone();
        let e1 = r.entries()[1].clone();
        drop(r);
        bytes[e0.offset as usize + 4] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let r = PackReader::open(&path).unwrap().unwrap();
        assert!(r.read_body(e0.offset, e0.len, e0.digest).is_err());
        assert!(r.read_body(e1.offset, e1.len, e1.digest).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_footer_or_index_rejects_whole_pack() {
        let dir = tmp_dir("tornindex");
        let path = write_two(&dir);
        let good = std::fs::read(&path).unwrap();
        // Truncate into the footer.
        std::fs::write(&path, &good[..good.len() - 10]).unwrap();
        assert!(matches!(
            PackReader::open(&path),
            Err(CoreError::CorruptBin(_))
        ));
        // Flip a byte inside the index JSON.
        let mut bytes = good.clone();
        let idx = bytes.len() - FOOTER_LEN as usize - 5;
        bytes[idx] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PackReader::open(&path),
            Err(CoreError::CorruptBin(_))
        ));
        // Wrong leading magic.
        let mut bytes = good.clone();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PackReader::open(&path),
            Err(CoreError::CorruptBin(_))
        ));
        // Wrong version byte.
        let mut bytes = good;
        bytes[8] = PACK_VERSION + 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PackReader::open(&path),
            Err(CoreError::CorruptBin(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_temp_files_survive() {
        let dir = tmp_dir("tmpfiles");
        write_two(&dir);
        // An aborted writer cleans up too.
        let w = PackWriter::create(&dir.join("other.pack")).unwrap();
        drop(w);
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec![PACK_FILE.to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
