//! A small standard library written in mini-SML.
//!
//! §9's "libraries" in the flesh: ordinary compilation units (`List`,
//! `Option`, `Fn`, `Pair`) that projects and interactive sessions pull in
//! through the same separate-compilation machinery as user code — they
//! are compiled once, cached as bins, and cut off like everything else.

use crate::irm::Project;
use crate::session::Session;
use crate::CoreError;

/// `structure Fn` — function combinators.
pub const FN_SOURCE: &str = "
structure Fn = struct
  fun id x = x
  fun const x = fn _ => x
  fun compose f g = fn x => f (g x)
  fun curry f = fn x => fn y => f (x, y)
  fun uncurry f = fn (x, y) => f x y
  fun flip f = fn (x, y) => f (y, x)
end
";

/// `structure Option` — option utilities (uses the pervasive
/// `NONE`/`SOME`).
pub const OPTION_SOURCE: &str = "
structure Option = struct
  exception Option
  fun isSome (SOME _) = true
    | isSome NONE = false
  fun isNone opt = if isSome opt then false else true
  fun valOf (SOME x) = x
    | valOf NONE = raise Option
  fun getOpt (SOME x, _) = x
    | getOpt (NONE, d) = d
  fun map f (SOME x) = SOME (f x)
    | map f NONE = NONE
  fun andThen f (SOME x) = f x
    | andThen f NONE = NONE
  fun filter p (SOME x) = if p x then SOME x else NONE
    | filter p NONE = NONE
end
";

/// `structure List` — list utilities (uses the pervasive `nil`/`::`).
pub const LIST_SOURCE: &str = "
structure List = struct
  exception Empty
  exception Subscript

  fun null [] = true
    | null _ = false

  fun hd [] = raise Empty
    | hd (x :: _) = x

  fun tl [] = raise Empty
    | tl (_ :: xs) = xs

  fun length l = let
    fun go acc [] = acc
      | go acc (_ :: xs) = go (acc + 1) xs
  in go 0 l end

  fun rev l = let
    fun go acc [] = acc
      | go acc (x :: xs) = go (x :: acc) xs
  in go [] l end

  fun map f [] = []
    | map f (x :: xs) = f x :: map f xs

  fun filter p [] = []
    | filter p (x :: xs) = if p x then x :: filter p xs else filter p xs

  fun foldl f acc [] = acc
    | foldl f acc (x :: xs) = foldl f (f (x, acc)) xs

  fun foldr f acc [] = acc
    | foldr f acc (x :: xs) = f (x, foldr f acc xs)

  fun exists p [] = false
    | exists p (x :: xs) = p x orelse exists p xs

  fun all p [] = true
    | all p (x :: xs) = p x andalso all p xs

  fun append (xs, ys) = xs @ ys

  fun concat [] = []
    | concat (l :: ls) = l @ concat ls

  fun nth ([], _) = raise Subscript
    | nth (x :: _, 0) = x
    | nth (_ :: xs, n) = if n < 0 then raise Subscript else nth (xs, n - 1)

  fun take (_, 0) = []
    | take ([], _) = raise Subscript
    | take (x :: xs, n) = x :: take (xs, n - 1)

  fun drop (l, 0) = l
    | drop ([], _) = raise Subscript
    | drop (_ :: xs, n) = drop (xs, n - 1)

  fun zip ([], _) = []
    | zip (_, []) = []
    | zip (x :: xs, y :: ys) = (x, y) :: zip (xs, ys)

  fun tabulate (n, f) = let
    fun go i = if i >= n then [] else f i :: go (i + 1)
  in go 0 end

  fun find p [] = NONE
    | find p (x :: xs) = if p x then SOME x else find p xs
end
";

/// `structure Int` and `structure Str` — wrappers over the compiler
/// primitives `itos` and `size`.
pub const INT_STR_SOURCE: &str = "
structure Int = struct
  fun toString n = itos n
  fun abs n = if n < 0 then ~n else n
  fun min (a, b) = if a < b then a else b
  fun max (a, b) = if a > b then a else b
  fun sign n = if n < 0 then ~1 else if n > 0 then 1 else 0
end

structure Str = struct
  (* `val`, not `fun`: a `fun size` would shadow the pervasive and
     recurse into itself. *)
  val size = fn s => size s
  fun isEmpty s = size s = 0
  fun concatWith sep l = let
    fun go [] = \"\"
      | go [x] = x
      | go (x :: xs) = x ^ sep ^ go xs
  in go l end
end
";

/// `structure Pair` — pair utilities.
pub const PAIR_SOURCE: &str = "
structure Pair = struct
  fun fst (x, _) = x
  fun snd (_, y) = y
  fun swap (x, y) = (y, x)
  fun mapFst f (x, y) = (f x, y)
  fun mapSnd f (x, y) = (x, f y)
end
";

/// The standard library units, `(unit name, source)`, dependency-free
/// and loadable in any order.
pub fn stdlib_units() -> Vec<(&'static str, &'static str)> {
    vec![
        ("std_fn", FN_SOURCE),
        ("std_option", OPTION_SOURCE),
        ("std_list", LIST_SOURCE),
        ("std_pair", PAIR_SOURCE),
        ("std_int_str", INT_STR_SOURCE),
    ]
}

/// Adds the standard library sources to a project.
pub fn add_stdlib(project: &mut Project) {
    for (name, src) in stdlib_units() {
        project.add(name, src);
    }
}

impl Session {
    /// Evaluates the standard library into the session (one layer per
    /// unit).
    ///
    /// # Errors
    ///
    /// Propagates any compile/execute failure (which would indicate a bug
    /// in the shipped sources — the test suite compiles them).
    pub fn load_stdlib(&mut self) -> Result<(), CoreError> {
        for (_, src) in stdlib_units() {
            self.eval(src)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irm::{Irm, Strategy};

    #[test]
    fn stdlib_compiles_warning_free() {
        let mut p = Project::new();
        add_stdlib(&mut p);
        let mut irm = Irm::new(Strategy::Cutoff);
        let report = irm.build(&p).expect("stdlib builds");
        assert_eq!(report.recompiled.len(), stdlib_units().len());
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn stdlib_usable_from_a_project() {
        let mut p = Project::new();
        add_stdlib(&mut p);
        p.add(
            "app",
            "structure App = struct
               val evens = List.filter (fn x => x mod 2 = 0) (List.tabulate (10, Fn.id))
               val total = List.foldl (fn (x, acc) => x + acc) 0 evens
               val third = List.nth (evens, 2)
               val headOr = Option.getOpt (List.find (fn x => x > 100) evens, ~1)
               val swapped = Pair.swap (1, 2)
             end",
        );
        let mut irm = Irm::new(Strategy::Cutoff);
        let (_, env) = irm.execute(&p).expect("runs");
        let app = env.get(smlsc_ids::Symbol::intern("app")).unwrap();
        let smlsc_dynamics::value::Value::Record(units) = &app.values else {
            panic!()
        };
        let smlsc_dynamics::value::Value::Record(fields) = &units[0] else {
            panic!()
        };
        // evens = [0,2,4,6,8]; total = 20; third = 4; headOr = ~1.
        assert_eq!(fields[1], smlsc_dynamics::value::Value::Int(20));
        assert_eq!(fields[2], smlsc_dynamics::value::Value::Int(4));
        assert_eq!(fields[3], smlsc_dynamics::value::Value::Int(-1));
    }

    #[test]
    fn stdlib_in_a_session() {
        let mut s = Session::new();
        s.load_stdlib().expect("loads");
        s.eval(
            "structure T = struct
               val r = List.rev [1, 2, 3]
               val n = List.length r
               val v = Option.valOf (SOME 9)
             end",
        )
        .expect("evals");
        assert_eq!(s.show_value("T", "n").unwrap(), "3");
        assert_eq!(s.show_value("T", "v").unwrap(), "9");
        assert_eq!(s.show_value("T", "r").unwrap(), "[3, 2, 1]");
    }

    #[test]
    fn stdlib_exceptions_raise_and_catch() {
        let mut s = Session::new();
        s.load_stdlib().unwrap();
        s.eval(
            "structure T = struct
               val caught = (List.hd []) handle List.Empty => ~7
               val sub = (List.nth ([1], 5)) handle List.Subscript => ~8
               val opt = (Option.valOf NONE) handle Option.Option => ~9
             end",
        )
        .unwrap();
        assert_eq!(s.show_value("T", "caught").unwrap(), "~7");
        assert_eq!(s.show_value("T", "sub").unwrap(), "~8");
        assert_eq!(s.show_value("T", "opt").unwrap(), "~9");
    }

    #[test]
    fn stdlib_polymorphism() {
        let mut s = Session::new();
        s.load_stdlib().unwrap();
        s.eval(
            r#"structure T = struct
                 val ints = List.map (fn x => x + 1) [1, 2]
                 val strs = List.map (fn s => s ^ "!") ["a"]
                 val pairs = List.zip ([1, 2, 3], ["x", "y"])
               end"#,
        )
        .unwrap();
        assert_eq!(
            s.show_value("T", "pairs").unwrap(),
            r#"[(1, "x"), (2, "y")]"#
        );
    }
}
