//! Intrinsic pids: hashing exported static environments (§5).
//!
//! The export pid of a unit is a 128-bit digest of its digested interface
//! — *not* of its source text — so:
//!
//! * editing comments or whitespace leaves the pid unchanged (the source
//!   digest changes, the export pid does not);
//! * editing a function body without changing any exported type leaves
//!   the pid unchanged — this is what makes **cutoff recompilation**
//!   possible;
//! * any observable interface change (new export, changed type, changed
//!   datatype shape) changes the pid.
//!
//! Two subtleties, both from the paper:
//!
//! 1. **Provisional pids.**  Entities created by this unit have no pid
//!    yet — their pids will be *derived from the very hash being
//!    computed*.  The traversal therefore alpha-converts: the `n`th new
//!    entity hashes as the number `n` (assigned in prefix-traversal
//!    order), and after the export hash `H` is known, entity `n` receives
//!    its real pid `digest(unit, H, n)`.  This also makes the hash
//!    independent of session stamp numbering.
//! 2. **Previously compiled entities** (imports, pervasives, re-exports)
//!    hash by their existing pids, so a unit's interface hash reflects
//!    the precise identities of the types it re-exports — the
//!    inter-implementation dependencies of §2 are captured exactly.
//!
//! Unlike the paper we also mix the *unit name* into derived entity pids:
//! two distinct units with structurally identical interfaces then export
//! equal interface hashes (good for diagnostics) but distinct generative
//! entities (sound linkage).

use std::collections::HashMap;

use smlsc_dynamics::ir::ConTag;
use smlsc_ids::{Digest128, Pid, Stamp, Symbol};
use smlsc_pickle::Entity;
use smlsc_statics::env::{Bindings, FunctorEnv, SignatureEnv, StructureEnv, ValBind, ValKind};
use smlsc_statics::types::{Scheme, Tycon, TyconDef, Type};

/// The result of hashing a unit's exports.
#[derive(Debug, Clone)]
pub struct HashResult {
    /// The unit's export pid (its interface identity).
    pub export_pid: Pid,
    /// How many new entities received derived pids.
    pub new_entities: usize,
}

/// An error during hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HashError {
    /// An exported type contains an unsolved unification variable (the
    /// elaborator's export check should have rejected this unit).
    UnsolvedType,
}

impl std::fmt::Display for HashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HashError::UnsolvedType => write!(f, "cannot hash an unsolved unification variable"),
        }
    }
}

impl std::error::Error for HashError {}

// Traversal tags: one byte per construct so different shapes cannot
// collide by concatenation.
const T_EXT: u8 = 1;
const T_PROV_DEF: u8 = 2;
const T_PROV_REF: u8 = 3;
const T_PARAM: u8 = 10;
const T_CON: u8 = 11;
const T_TUPLE: u8 = 12;
const T_ARROW: u8 = 13;
const T_VAL_PLAIN: u8 = 20;
const T_VAL_CON: u8 = 21;
const T_VAL_EXN: u8 = 22;
const T_VAL_PRIM: u8 = 23;
const T_BINDINGS: u8 = 30;
const T_TYCON_ABS: u8 = 40;
const T_TYCON_DATA: u8 = 41;
const T_TYCON_ALIAS: u8 = 42;
const T_TYCON_PRIM: u8 = 43;
const T_STR: u8 = 50;
const T_SIG: u8 = 51;
const T_FCT: u8 = 52;

/// Hashes `exports`, computing the unit's export pid and assigning
/// derived pids to every entity the unit created.
///
/// Idempotent in effect: entities that already carry pids are hashed by
/// pid and never reassigned.
///
/// # Errors
///
/// [`HashError::UnsolvedType`] if a type is not fully solved.
pub fn hash_exports(unit_name: Symbol, exports: &Bindings) -> Result<HashResult, HashError> {
    let mut h = Hasher {
        d: Digest128::new(),
        prov: HashMap::new(),
        entities: Vec::new(),
    };
    h.d.write_str("smlsc:export-env");
    h.bindings(exports)?;
    let export_pid = h.d.finish_pid();
    // Replace provisional pids with real ones derived from the hash.
    for (n, e) in h.entities.iter().enumerate() {
        let mut d = Digest128::new();
        d.write_str("smlsc:entity");
        d.write_str(unit_name.as_str());
        d.write_pid(export_pid);
        d.write_u64(n as u64);
        let pid = d.finish_pid();
        match e {
            Entity::Tycon(t) => t.entity_pid.set(Some(pid)),
            Entity::Str(s) => s.entity_pid.set(Some(pid)),
            Entity::Sig(s) => s.entity_pid.set(Some(pid)),
            Entity::Fct(f) => f.entity_pid.set(Some(pid)),
        }
    }
    Ok(HashResult {
        export_pid,
        new_entities: h.entities.len(),
    })
}

struct Hasher {
    d: Digest128,
    prov: HashMap<Stamp, u32>,
    entities: Vec<Entity>,
}

impl Hasher {
    /// Writes the reference header for an entity; returns `true` when the
    /// definition must be hashed (first provisional encounter).
    fn entity_ref(
        &mut self,
        stamp: Stamp,
        pid: Option<Pid>,
        entity: impl FnOnce() -> Entity,
    ) -> bool {
        if let Some(p) = pid {
            self.d.write_tag(T_EXT);
            self.d.write_pid(p);
            return false;
        }
        if let Some(&n) = self.prov.get(&stamp) {
            self.d.write_tag(T_PROV_REF);
            self.d.write_u64(u64::from(n));
            return false;
        }
        let n = self.entities.len() as u32;
        self.prov.insert(stamp, n);
        self.entities.push(entity());
        self.d.write_tag(T_PROV_DEF);
        self.d.write_u64(u64::from(n));
        true
    }

    fn tycon(&mut self, tc: &std::sync::Arc<Tycon>) -> Result<(), HashError> {
        if !self.entity_ref(tc.stamp, tc.entity_pid.get(), || Entity::Tycon(tc.clone())) {
            return Ok(());
        }
        self.d.write_str(tc.name.as_str());
        self.d.write_u64(tc.arity as u64);
        let def = tc.def.read().clone();
        match def {
            TyconDef::Prim => self.d.write_tag(T_TYCON_PRIM),
            TyconDef::Abstract => self.d.write_tag(T_TYCON_ABS),
            TyconDef::Datatype(info) => {
                self.d.write_tag(T_TYCON_DATA);
                self.d.write_u64(info.cons.len() as u64);
                for c in &info.cons {
                    self.d.write_str(c.name.as_str());
                    match &c.arg {
                        None => self.d.write_tag(0),
                        Some(t) => {
                            self.d.write_tag(1);
                            self.ty(t)?;
                        }
                    }
                }
            }
            TyconDef::Alias(t) => {
                self.d.write_tag(T_TYCON_ALIAS);
                self.ty(&t)?;
            }
        }
        Ok(())
    }

    fn structure(&mut self, s: &std::sync::Arc<StructureEnv>) -> Result<(), HashError> {
        if !self.entity_ref(s.stamp, s.entity_pid.get(), || Entity::Str(s.clone())) {
            return Ok(());
        }
        self.d.write_tag(T_STR);
        self.bindings(&s.bindings)
    }

    fn signature(&mut self, s: &std::sync::Arc<SignatureEnv>) -> Result<(), HashError> {
        if !self.entity_ref(s.stamp, s.entity_pid.get(), || Entity::Sig(s.clone())) {
            return Ok(());
        }
        self.d.write_tag(T_SIG);
        self.structure(&s.body)?;
        // Flexible components, by provisional number (alpha-converted).
        self.d.write_u64(s.bound.len() as u64);
        for st in &s.bound {
            let n = self.prov.get(st).copied().unwrap_or(u32::MAX);
            self.d.write_u64(u64::from(n));
        }
        Ok(())
    }

    fn functor(&mut self, f: &std::sync::Arc<FunctorEnv>) -> Result<(), HashError> {
        if !self.entity_ref(f.stamp, f.entity_pid.get(), || Entity::Fct(f.clone())) {
            return Ok(());
        }
        self.d.write_tag(T_FCT);
        self.signature(&f.param_sig)?;
        self.structure(&f.param_inst)?;
        self.d.write_u64(f.skolems.len() as u64);
        for st in &f.skolems {
            let n = self.prov.get(st).copied().unwrap_or(u32::MAX);
            self.d.write_u64(u64::from(n));
        }
        self.structure(&f.body)
        // Note: gen_lo/gen_hi are session-local and deliberately not
        // hashed — the alpha-conversion principle.
    }

    fn bindings(&mut self, b: &Bindings) -> Result<(), HashError> {
        self.d.write_tag(T_BINDINGS);
        self.d.write_u64(b.vals.len() as u64);
        for (n, vb) in &b.vals {
            self.d.write_str(n.as_str());
            self.valbind(vb)?;
        }
        self.d.write_u64(b.tycons.len() as u64);
        for (n, tc) in &b.tycons {
            self.d.write_str(n.as_str());
            self.tycon(tc)?;
        }
        self.d.write_u64(b.strs.len() as u64);
        for (n, s) in &b.strs {
            self.d.write_str(n.as_str());
            self.structure(s)?;
        }
        self.d.write_u64(b.sigs.len() as u64);
        for (n, s) in &b.sigs {
            self.d.write_str(n.as_str());
            self.signature(s)?;
        }
        self.d.write_u64(b.fcts.len() as u64);
        for (n, f) in &b.fcts {
            self.d.write_str(n.as_str());
            self.functor(f)?;
        }
        Ok(())
    }

    fn valbind(&mut self, vb: &ValBind) -> Result<(), HashError> {
        match &vb.kind {
            ValKind::Plain => self.d.write_tag(T_VAL_PLAIN),
            ValKind::Exn => self.d.write_tag(T_VAL_EXN),
            ValKind::Prim(op) => {
                self.d.write_tag(T_VAL_PRIM);
                self.d.write_str(op.name());
            }
            ValKind::Con { tycon, tag } => {
                self.d.write_tag(T_VAL_CON);
                self.tycon(tycon)?;
                self.contag(tag);
            }
        }
        self.scheme(&vb.scheme)
    }

    fn contag(&mut self, t: &ConTag) {
        self.d.write_u64(u64::from(t.tag));
        self.d.write_u64(u64::from(t.span));
        self.d.write_tag(u8::from(t.has_arg));
        self.d.write_str(t.name.as_str());
    }

    fn scheme(&mut self, s: &Scheme) -> Result<(), HashError> {
        self.d.write_u64(u64::from(s.arity));
        self.ty(&s.body)
    }

    fn ty(&mut self, t: &Type) -> Result<(), HashError> {
        match t {
            Type::UVar(uv) => {
                let link = uv.link.read().clone();
                match link {
                    Some(t2) => self.ty(&t2),
                    None => Err(HashError::UnsolvedType),
                }
            }
            Type::Param(i) => {
                self.d.write_tag(T_PARAM);
                self.d.write_u64(u64::from(*i));
                Ok(())
            }
            Type::Con(tc, args) => {
                self.d.write_tag(T_CON);
                self.tycon(tc)?;
                self.d.write_u64(args.len() as u64);
                for a in args {
                    self.ty(a)?;
                }
                Ok(())
            }
            Type::Tuple(ts) => {
                self.d.write_tag(T_TUPLE);
                self.d.write_u64(ts.len() as u64);
                for x in ts {
                    self.ty(x)?;
                }
                Ok(())
            }
            Type::Arrow(a, b) => {
                self.d.write_tag(T_ARROW);
                self.ty(a)?;
                self.ty(b)
            }
        }
    }
}
