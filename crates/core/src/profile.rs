//! The critical-path profiler: per-unit phase attribution over recorded
//! spans, plus the import-DAG critical path.
//!
//! A [`trace::Collector`] retains every span a build emitted; this
//! module folds them back into *per-unit* rows — which phase of which
//! unit the time went to, on which worker — and combines them with the
//! resolved import graph ([`crate::irm::Irm::import_graph`]) to find the
//! chains that bound the build's wall clock.  `smlsc profile` renders
//! the result; the length-critical path (in units) is computed over the
//! same edges the wavefront scheduler dispatches, so it always agrees
//! with the `irm.critical_path` counter.

use std::collections::HashMap;

use smlsc_ids::Symbol;
use smlsc_trace::names;
use smlsc_trace::sink::CollectedSpan;

use crate::irm::BuildReport;

/// Per-phase totals for one unit, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Dependency analysis (`irm.analyze`).
    pub analyze_us: u64,
    /// Lexing + parsing (`compile.parse`).
    pub parse_us: u64,
    /// Elaboration (`compile.elaborate`).
    pub elaborate_us: u64,
    /// Interface hashing (`compile.hash`).
    pub hash_us: u64,
    /// Export-environment pickling (`compile.dehydrate`).
    pub dehydrate_us: u64,
    /// Unpickling cached exports (`irm.rehydrate`).
    pub rehydrate_us: u64,
}

impl PhaseBreakdown {
    /// Sum of all attributed phases.
    pub fn total_us(&self) -> u64 {
        self.analyze_us
            + self.parse_us
            + self.elaborate_us
            + self.hash_us
            + self.dehydrate_us
            + self.rehydrate_us
    }
}

/// One unit's reconstructed profile.
#[derive(Debug, Clone)]
pub struct UnitProfile {
    /// The unit.
    pub unit: String,
    /// Wall time attributed to the unit: its `irm.task` span when the
    /// build was parallel, else the sum of its phase spans.
    pub wall_us: u64,
    /// Wall time not explained by any known phase (scheduling, rebuild
    /// decision, store probes).
    pub self_us: u64,
    /// The per-phase split.
    pub phases: PhaseBreakdown,
    /// The worker (dense thread tag) that ran the unit's task, when the
    /// build was parallel.
    pub worker: Option<u64>,
}

/// A whole build's profile, reconstructed from spans + the import DAG.
#[derive(Debug, Clone)]
pub struct BuildProfile {
    /// Per-unit rows, sorted by wall time descending.
    pub units: Vec<UnitProfile>,
    /// Whole-build wall clock (the `irm.build` span), microseconds.
    pub wall_us: u64,
    /// Longest import chain in units — the same number the wavefront
    /// scheduler publishes as the `irm.critical_path` counter.
    pub critical_path: usize,
    /// The heaviest chain by attributed time, root first.
    pub critical_chain: Vec<String>,
    /// Total attributed time along [`Self::critical_chain`].
    pub critical_chain_us: u64,
    /// Units whose compile was avoided (reused + cutoff + store hits).
    pub avoided_units: u64,
    /// Mean cost of one compile this build, if anything compiled.
    pub mean_compile_us: Option<u64>,
    /// Estimated wall time the caches saved vs recompiling every
    /// avoided unit (`avoided × mean compile cost`); `None` when no
    /// per-compile cost estimate is available.
    pub saved_us: Option<u64>,
}

impl BuildProfile {
    /// Reconstructs a profile from a build's retained spans, the
    /// resolved import graph (topological order, as returned by
    /// [`crate::irm::Irm::import_graph`]), and the build report.
    ///
    /// `mean_compile_us_hint` supplies a per-compile cost estimate for
    /// builds that compiled nothing (e.g. the median of ledger history);
    /// it is ignored when this build measured its own compiles.
    pub fn compute(
        spans: &[CollectedSpan],
        graph: &[(Symbol, Vec<Symbol>)],
        report: &BuildReport,
        mean_compile_us_hint: Option<u64>,
    ) -> BuildProfile {
        let mut phases: HashMap<String, PhaseBreakdown> = HashMap::new();
        let mut tasks: HashMap<String, (u64, u64)> = HashMap::new();
        let mut wall_us = 0u64;
        for s in spans {
            if s.name == names::SPAN_BUILD {
                wall_us = wall_us.max(s.dur_us);
                continue;
            }
            let Some(unit) = s.fields.iter().find(|(k, _)| k == "unit").map(|(_, v)| v) else {
                continue;
            };
            if s.name == names::SPAN_TASK {
                let e = tasks.entry(unit.clone()).or_insert((0, s.tid));
                e.0 += s.dur_us;
                e.1 = s.tid;
                continue;
            }
            let p = phases.entry(unit.clone()).or_default();
            match s.name {
                names::SPAN_ANALYZE => p.analyze_us += s.dur_us,
                names::SPAN_PARSE => p.parse_us += s.dur_us,
                names::SPAN_ELABORATE => p.elaborate_us += s.dur_us,
                names::SPAN_HASH => p.hash_us += s.dur_us,
                names::SPAN_DEHYDRATE => p.dehydrate_us += s.dur_us,
                names::SPAN_REHYDRATE => p.rehydrate_us += s.dur_us,
                _ => {}
            }
        }

        // Per-unit rows in graph order (every planned unit gets one,
        // even if it spent no measurable time).
        let mut units: Vec<UnitProfile> = graph
            .iter()
            .map(|(unit, _)| {
                let name = unit.as_str().to_string();
                let p = phases.get(&name).copied().unwrap_or_default();
                let task = tasks.get(&name);
                let wall = task.map(|(d, _)| *d).unwrap_or(0).max(p.total_us());
                UnitProfile {
                    self_us: wall.saturating_sub(p.total_us()),
                    wall_us: wall,
                    worker: task.map(|(_, tid)| *tid),
                    phases: p,
                    unit: name,
                }
            })
            .collect();
        let attributed: HashMap<&str, u64> =
            units.iter().map(|u| (u.unit.as_str(), u.wall_us)).collect();

        // Critical paths over the DAG.  `graph` is topological, so every
        // import's entry is finished before its dependents read it.
        // `len` counts units (matching `irm.critical_path`); `cost` is
        // the time-weighted variant rendered as the critical chain.
        let index: HashMap<Symbol, usize> = graph
            .iter()
            .enumerate()
            .map(|(i, (u, _))| (*u, i))
            .collect();
        let n = graph.len();
        let mut len = vec![1usize; n];
        let mut cost = vec![0u64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        for (i, (unit, imports)) in graph.iter().enumerate() {
            cost[i] = attributed.get(unit.as_str()).copied().unwrap_or(0);
            for dep in imports {
                let d = index[dep];
                len[i] = len[i].max(len[d] + 1);
                if cost[d] > pred[i].map(|p| cost[p]).unwrap_or(0) {
                    pred[i] = Some(d);
                }
            }
            if let Some(p) = pred[i] {
                cost[i] += cost[p];
            }
        }
        let critical_path = len.iter().copied().max().unwrap_or(0);
        let mut critical_chain = Vec::new();
        let mut critical_chain_us = 0;
        if let Some(mut at) = (0..n).max_by_key(|&i| cost[i]) {
            critical_chain_us = cost[at];
            loop {
                critical_chain.push(graph[at].0.as_str().to_string());
                match pred[at] {
                    Some(p) => at = p,
                    None => break,
                }
            }
            critical_chain.reverse();
        }

        // What the caches saved: every avoided compile would have cost
        // about one mean compile.  A build that compiled something
        // measures its own mean; otherwise the caller's hint (history).
        let compiled = report.recompiled.len() as u64;
        let avoided = (report.reused.len() + report.store_hits.len()) as u64;
        let measured_mean =
            (compiled > 0).then(|| report.timings.total().as_micros() as u64 / compiled);
        let mean_compile_us = measured_mean.or(mean_compile_us_hint);
        let saved_us = mean_compile_us.map(|m| m * avoided);

        units.sort_by(|a, b| b.wall_us.cmp(&a.wall_us).then(a.unit.cmp(&b.unit)));
        BuildProfile {
            units,
            wall_us,
            critical_path,
            critical_chain,
            critical_chain_us,
            avoided_units: avoided,
            mean_compile_us,
            saved_us,
        }
    }

    /// Renders the profile as the human-readable report `smlsc profile`
    /// prints: top-`k` slowest units with their phase breakdown, the
    /// critical path/chain, and the estimated cache savings.
    pub fn render(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} unit(s), wall {}, critical path {} unit(s)",
            self.units.len(),
            fmt_us(self.wall_us),
            self.critical_path
        );
        let shown = self.units.iter().filter(|u| u.wall_us > 0).take(k);
        let _ = writeln!(
            out,
            "  {:<18} {:>9} {:>9}  {:>8} {:>8} {:>8} {:>8} {:>8}  {:>6}",
            "unit", "wall", "self", "analyze", "parse", "elab", "hash", "pickle", "worker"
        );
        for u in shown {
            let _ = writeln!(
                out,
                "  {:<18} {:>9} {:>9}  {:>8} {:>8} {:>8} {:>8} {:>8}  {:>6}",
                u.unit,
                fmt_us(u.wall_us),
                fmt_us(u.self_us),
                fmt_us(u.phases.analyze_us),
                fmt_us(u.phases.parse_us),
                fmt_us(u.phases.elaborate_us),
                fmt_us(u.phases.hash_us),
                fmt_us(u.phases.dehydrate_us + u.phases.rehydrate_us),
                u.worker
                    .map(|w| w.to_string())
                    .unwrap_or_else(|| "-".into())
            );
        }
        if !self.critical_chain.is_empty() && self.critical_chain_us > 0 {
            let _ = writeln!(
                out,
                "  critical chain ({}): {}",
                fmt_us(self.critical_chain_us),
                self.critical_chain.join(" -> ")
            );
        }
        match (self.saved_us, self.mean_compile_us) {
            (Some(saved), Some(mean)) if self.avoided_units > 0 => {
                let paranoid = self.wall_us + saved;
                let pct = if paranoid > 0 {
                    100.0 * saved as f64 / paranoid as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  avoided {} compile(s) (~{} each): est. {} saved, {:.1}% of a rebuild-everything build",
                    self.avoided_units,
                    fmt_us(mean),
                    fmt_us(saved),
                    pct
                );
            }
            _ if self.avoided_units > 0 => {
                let _ = writeln!(
                    out,
                    "  avoided {} compile(s) (no per-compile cost measured yet)",
                    self.avoided_units
                );
            }
            _ => {}
        }
        out
    }
}

/// Microseconds, human-formatted (µs under 1 ms, else ms).
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else {
        format!("{:.2}ms", us as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irm::{Irm, Project, Strategy};
    use smlsc_trace as trace;

    fn chain_project() -> Project {
        let mut p = Project::new();
        p.add("a", "structure A = struct val x = 1 end");
        p.add("b", "structure B = struct val y = A.x + 1 end");
        p.add("c", "structure C = struct val z = B.y + 1 end");
        p
    }

    #[test]
    fn profile_attributes_phases_and_critical_path() {
        let p = chain_project();
        let collector = trace::Collector::new();
        collector.install();
        let mut irm = Irm::new(Strategy::Cutoff);
        let report = irm.build_with_jobs(&p, 4).unwrap();
        trace::uninstall();
        let graph = irm.import_graph(&p).unwrap();
        let profile = BuildProfile::compute(&collector.spans(), &graph, &report, None);

        assert_eq!(profile.units.len(), 3);
        assert_eq!(profile.critical_path, 3, "a -> b -> c");
        assert_eq!(
            profile.critical_path as u64,
            collector.counter(names::CRITICAL_PATH),
            "profile must agree with the scheduler's counter"
        );
        // Every compiled unit has attributed parse + elaborate time and
        // a worker tag from its task span.
        for u in &profile.units {
            assert!(u.wall_us > 0, "{u:?}");
            assert!(u.phases.parse_us > 0 || u.phases.elaborate_us > 0, "{u:?}");
            assert!(u.worker.is_some(), "{u:?}");
            assert_eq!(u.self_us, u.wall_us - u.phases.total_us());
        }
        assert_eq!(profile.critical_chain.len(), 3);
        assert_eq!(profile.critical_chain, vec!["a", "b", "c"]);
        let rendered = profile.render(10);
        assert!(rendered.contains("critical path 3 unit(s)"), "{rendered}");
        assert!(rendered.contains("critical chain"), "{rendered}");
    }

    #[test]
    fn warm_build_profile_estimates_savings_from_hint() {
        let p = chain_project();
        let mut irm = Irm::new(Strategy::Cutoff);
        irm.build(&p).unwrap();
        // Warm build: everything reused, nothing compiled.
        let collector = trace::Collector::new();
        collector.install();
        let report = irm.build(&p).unwrap();
        trace::uninstall();
        let graph = irm.import_graph(&p).unwrap();
        assert_eq!(report.recompiled.len(), 0);
        let profile = BuildProfile::compute(&collector.spans(), &graph, &report, Some(500));
        assert_eq!(profile.avoided_units, 3);
        assert_eq!(profile.saved_us, Some(1500));
        let none = BuildProfile::compute(&collector.spans(), &graph, &report, None);
        assert_eq!(none.saved_us, None);
        assert!(none.render(5).contains("no per-compile cost"), "render");
    }

    #[test]
    fn sequential_builds_profile_without_task_spans() {
        let p = chain_project();
        let collector = trace::Collector::new();
        collector.install();
        let mut irm = Irm::new(Strategy::Cutoff);
        let report = irm.build(&p).unwrap();
        trace::uninstall();
        let graph = irm.import_graph(&p).unwrap();
        let profile = BuildProfile::compute(&collector.spans(), &graph, &report, None);
        // No irm.task spans: wall falls back to the phase sum.
        for u in &profile.units {
            assert!(u.worker.is_none());
            assert_eq!(u.wall_us, u.phases.total_us());
            assert_eq!(u.self_us, 0);
        }
        assert_eq!(profile.critical_path, 3);
    }
}
