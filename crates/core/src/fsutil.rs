//! Durable filesystem idioms shared by every on-disk state writer.
//!
//! Three promises, one place:
//!
//! * **Unique staging names.**  [`unique_tmp`] derives a tmp path from
//!   the destination plus the process id *and* a process-global
//!   sequence number, so two saves — across processes or across
//!   threads of one process — can never clobber each other's staging
//!   file.
//! * **Atomic, durable publication.**  [`commit_atomic`] is the full
//!   tmp + write + fsync + rename + **fsync(parent dir)** sequence.
//!   The final directory fsync is the step the rest of the codebase
//!   historically skipped: `rename(2)` alone orders nothing — after a
//!   power loss the directory entry may still point at the old file,
//!   or at nothing.  Syncing the parent makes the rename itself
//!   durable.
//! * **Crash-point instrumentation.**  Every commit checks its fault
//!   point at three stages — `begin` (nothing written), `staged` (tmp
//!   complete, not yet renamed), `renamed` (renamed, parent not yet
//!   synced) — so the crash-recovery harness can kill the process in
//!   each distinct half-finished state and prove the next build
//!   recovers.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use smlsc_faults::{self as faults, FaultKind};

/// Process-global staging counter: tmp names stay unique even when two
/// threads of one process save the same destination concurrently.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A staging path for `dest`, unique per process *and* per call:
/// `<stem>.tmp-<pid>-<seq>`.  Always in `dest`'s directory, so the
/// final rename never crosses a filesystem.
pub fn unique_tmp(dest: &Path) -> PathBuf {
    dest.with_extension(format!(
        "tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// True when `name` looks like one of our staging files (`*.tmp-*`):
/// the litter an interrupted save leaves behind, safe to sweep.
pub fn is_tmp_litter(name: &str) -> bool {
    name.rsplit_once('.')
        .is_some_and(|(_, ext)| ext.starts_with("tmp-"))
}

/// Opens `dir` and fsyncs it, making a just-completed rename within it
/// durable.  Errors are real: a caller that ignores them is back to
/// rename-only semantics.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Publishes `bytes` at `path` atomically and durably:
/// tmp + write + fsync + rename + fsync(parent).
///
/// `point` is the fault point checked at each stage with a
/// `"<stage> <filename>"` detail (stages `begin`, `staged`,
/// `renamed`), so specs can select a precise half-finished state:
/// `io` fails the commit, `torn` writes only the first half of
/// `bytes` (the file-level corruption readers must detect), `crash`
/// aborts the process on the spot.
///
/// # Errors
///
/// Any IO failure along the sequence; the staging file is removed on
/// the failure paths that can still run code.
pub fn commit_atomic(path: &Path, bytes: &[u8], point: &'static str) -> io::Result<()> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut payload = bytes;
    match faults::check(point, &format!("begin {name}")) {
        Some(FaultKind::Io) => return Err(faults::io_error(point, &name)),
        Some(FaultKind::Torn) => payload = &bytes[..bytes.len() / 2],
        _ => {}
    }
    let tmp = unique_tmp(path);
    let write = || -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(payload)?;
        f.sync_all()
    };
    if let Err(e) = write() {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Some(FaultKind::Io) = faults::check(point, &format!("staged {name}")) {
        std::fs::remove_file(&tmp).ok();
        return Err(faults::io_error(point, &name));
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    faults::check(point, &format!("renamed {name}"));
    if let Some(dir) = path.parent() {
        fsync_dir(dir)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smlsc_faults::{install_scoped, points, FaultPlan, FaultRule};

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smlsc-fsutil-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tmp_names_are_unique_per_call() {
        let dest = Path::new("/x/stamps.json");
        let a = unique_tmp(dest);
        let b = unique_tmp(dest);
        assert_ne!(a, b);
        assert!(a.to_string_lossy().contains("tmp-"));
        assert!(is_tmp_litter(&a.file_name().unwrap().to_string_lossy()));
        assert!(!is_tmp_litter("stamps.json"));
        assert!(!is_tmp_litter("bins.pack"));
    }

    #[test]
    fn commit_replaces_the_destination_and_leaves_no_litter() {
        let dir = temp("commit");
        let path = dir.join("state.bin");
        commit_atomic(&path, b"first", points::STAMP_SAVE).unwrap();
        commit_atomic(&path, b"second", points::STAMP_SAVE).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["state.bin"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_io_fails_the_commit_and_keeps_the_old_file() {
        let dir = temp("io");
        let path = dir.join("state.bin");
        commit_atomic(&path, b"good", points::STAMP_SAVE).unwrap();
        for stage in ["begin", "staged"] {
            let _g = install_scoped(
                FaultPlan::default()
                    .with(FaultRule::new(points::STAMP_SAVE, FaultKind::Io).filtered(stage)),
            );
            assert!(commit_atomic(&path, b"bad", points::STAMP_SAVE).is_err());
            assert_eq!(std::fs::read(&path).unwrap(), b"good", "stage {stage}");
        }
        // No staging litter survives either failure.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["state.bin"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_torn_writes_half_the_payload() {
        let dir = temp("torn");
        let path = dir.join("state.bin");
        let _g = install_scoped(
            FaultPlan::default().with(FaultRule::new(points::STAMP_SAVE, FaultKind::Torn)),
        );
        commit_atomic(&path, b"12345678", points::STAMP_SAVE).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"1234");
        std::fs::remove_dir_all(&dir).ok();
    }
}
