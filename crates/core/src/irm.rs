//! The Incremental Recompilation Manager (§6, §8).
//!
//! The IRM replaces `make`: it analyzes inter-unit dependencies
//! automatically (free module names, §8), topologically orders the
//! project, and recompiles only what a strategy deems out of date:
//!
//! * [`Strategy::Cutoff`] — the paper's contribution.  A unit recompiles
//!   iff its own source digest changed or any *import pid* changed; and
//!   because the export pid is an intrinsic hash of the interface, a
//!   recompilation that leaves the interface unchanged produces the same
//!   export pid and the rebuild cascade is cut off right there.
//! * [`Strategy::Timestamp`] — Unix `make`: rebuild when any
//!   prerequisite (source or imported bin) is newer than the bin.
//!   Cascades unconditionally.
//! * [`Strategy::Classical`] — classical separate compilation: rebuild
//!   when the source changed or any dependency was rebuilt.  (Same
//!   cascade as `make`, without clock-skew artifacts.)
//!
//! Bin files are kept in an in-memory store (persistable via
//! [`Irm::save_bins`]/[`Irm::load_bins`]); rehydrated environments are
//! cached per build so each unit's statenv is read back at most once.

use std::collections::HashMap;
use std::path::Path;
use std::rc::Rc;
use std::time::{Duration, Instant};

use smlsc_ids::{Pid, Symbol};
use smlsc_pickle::{rehydrate, RehydrateContext};
use smlsc_statics::env::Bindings;
use smlsc_trace::{self as trace, names, RebuildDecision};

use crate::compile::{analyze_source, compile_unit, source_pid, CompileTimings, ImportSource};
use crate::link::{link_and_execute, DynEnv};
use crate::unit::BinFile;
use crate::CoreError;

/// One source file of a project.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Unit name (file stem).
    pub name: Symbol,
    /// Source text.
    pub text: String,
    /// Virtual modification time.
    pub mtime: u64,
}

static CLOCK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn wall_nanos() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// The process-wide virtual clock backing every mtime (file edits and
/// bin writes), so `make`-style comparisons behave like a real
/// filesystem: anything written later has a strictly larger mtime.
///
/// Stamps are `max(previous + 1, wall clock in ns since the epoch)`:
/// strictly increasing (so virtual `tick()` ordering is a reliable
/// tie-break) yet comparable with real file mtimes threaded in via
/// [`observe`]/[`Project::add_with_mtime`], which is what lets
/// [`Strategy::Timestamp`] work against sources loaded from disk.
pub fn tick() -> u64 {
    use std::sync::atomic::Ordering::Relaxed;
    let now = wall_nanos();
    let prev = CLOCK
        .fetch_update(Relaxed, Relaxed, |p| Some(p.saturating_add(1).max(now)))
        .expect("clock update closure never returns None");
    prev.saturating_add(1).max(now)
}

/// Advances the virtual clock to at least `mtime`, so stamps issued
/// after observing an external mtime (a real file) compare as later.
pub fn observe(mtime: u64) {
    CLOCK.fetch_max(mtime, std::sync::atomic::Ordering::Relaxed);
}

/// A project: named source files with virtual mtimes.
#[derive(Debug, Clone, Default)]
pub struct Project {
    files: Vec<SourceFile>,
}

impl Project {
    /// An empty project.
    pub fn new() -> Project {
        Project::default()
    }

    /// Adds a file (or replaces one of the same name), stamping it with a
    /// fresh mtime.
    pub fn add(&mut self, name: impl Into<String>, text: impl Into<String>) {
        let name = Symbol::intern(&name.into());
        let f = SourceFile {
            name,
            text: text.into(),
            mtime: tick(),
        };
        if let Some(existing) = self.files.iter_mut().find(|f| f.name == name) {
            *existing = f;
        } else {
            self.files.push(f);
        }
    }

    /// Adds a file stamped with an externally observed mtime (nanoseconds
    /// since the epoch, e.g. a real file's modification time).  The
    /// virtual clock is advanced past `mtime` so later stamps (bin
    /// writes, edits) still compare as newer.
    pub fn add_with_mtime(&mut self, name: impl Into<String>, text: impl Into<String>, mtime: u64) {
        observe(mtime);
        let name = Symbol::intern(&name.into());
        let f = SourceFile {
            name,
            text: text.into(),
            mtime,
        };
        if let Some(existing) = self.files.iter_mut().find(|f| f.name == name) {
            *existing = f;
        } else {
            self.files.push(f);
        }
    }

    /// Removes a file from the project.  Any bins referencing it become
    /// stale; the next build re-resolves imports and errors if something
    /// still imports its exports.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUnit`] when no such file exists.
    pub fn remove(&mut self, name: &str) -> Result<(), CoreError> {
        let name = Symbol::intern(name);
        let before = self.files.len();
        self.files.retain(|f| f.name != name);
        if self.files.len() == before {
            return Err(CoreError::UnknownUnit(name));
        }
        Ok(())
    }

    /// Replaces a file's text, bumping its mtime.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUnit`] when no such file exists.
    pub fn edit(&mut self, name: &str, text: impl Into<String>) -> Result<(), CoreError> {
        let name = Symbol::intern(name);
        let clock = tick();
        let f = self
            .files
            .iter_mut()
            .find(|f| f.name == name)
            .ok_or(CoreError::UnknownUnit(name))?;
        f.text = text.into();
        f.mtime = clock;
        Ok(())
    }

    /// Bumps a file's mtime without changing it (`touch`).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUnit`] when no such file exists.
    pub fn touch(&mut self, name: &str) -> Result<(), CoreError> {
        let name = Symbol::intern(name);
        let clock = tick();
        let f = self
            .files
            .iter_mut()
            .find(|f| f.name == name)
            .ok_or(CoreError::UnknownUnit(name))?;
        f.mtime = clock;
        Ok(())
    }

    /// The project's files.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Looks up a file.
    pub fn file(&self, name: &str) -> Option<&SourceFile> {
        let name = Symbol::intern(name);
        self.files.iter().find(|f| f.name == name)
    }

    /// Total source lines across the project.
    pub fn total_lines(&self) -> usize {
        self.files.iter().map(|f| f.text.lines().count()).sum()
    }
}

/// The recompilation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Cutoff recompilation over intrinsic pids (the paper).
    #[default]
    Cutoff,
    /// `make`-style timestamps.
    Timestamp,
    /// Classical cascade (source changed or any dependency rebuilt).
    Classical,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Strategy::Cutoff => "cutoff",
            Strategy::Timestamp => "timestamp",
            Strategy::Classical => "classical",
        })
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parses the same names [`Display`](std::fmt::Display) emits.
    fn from_str(s: &str) -> Result<Strategy, String> {
        match s {
            "cutoff" => Ok(Strategy::Cutoff),
            "timestamp" => Ok(Strategy::Timestamp),
            "classical" => Ok(Strategy::Classical),
            other => Err(format!(
                "unknown strategy `{other}` (expected cutoff, timestamp, or classical)"
            )),
        }
    }
}

/// What one [`Irm::build`] did.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// The strategy that made the decisions.
    pub strategy: Strategy,
    /// Units in build (topological) order.
    pub order: Vec<Symbol>,
    /// Units that were recompiled.
    pub recompiled: Vec<Symbol>,
    /// Units whose bins were reused.
    pub reused: Vec<Symbol>,
    /// Why each unit was recompiled or reused, in build order — the
    /// causal chain behind `smlsc build --explain`.
    pub decisions: Vec<(Symbol, RebuildDecision)>,
    /// Aggregate compile-phase timings.
    pub timings: CompileTimings,
    /// Time spent rehydrating cached statenvs.
    pub rehydrate: Duration,
    /// Elaboration warnings, per unit.
    pub warnings: Vec<(Symbol, String)>,
}

impl BuildReport {
    /// Convenience: did `name` get recompiled?
    pub fn was_recompiled(&self, name: &str) -> bool {
        self.recompiled.contains(&Symbol::intern(name))
    }

    /// The decision recorded for `name`, if it was in the build.
    pub fn decision_for(&self, name: &str) -> Option<&RebuildDecision> {
        let name = Symbol::intern(name);
        self.decisions
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| d)
    }

    /// The decision kinds in build order (`name`, `kind`) — handy for
    /// asserting exact causal sequences in tests.
    pub fn decision_kinds(&self) -> Vec<(String, &'static str)> {
        self.decisions
            .iter()
            .map(|(n, d)| (n.as_str().to_string(), d.kind()))
            .collect()
    }
}

/// The manager.
#[derive(Debug, Default)]
pub struct Irm {
    strategy: Option<Strategy>,
    bins: HashMap<Symbol, BinFile>,
    /// Dependency-analysis cache keyed by unit, valid while the source
    /// digest matches.
    deps_cache: HashMap<Symbol, CachedAnalysis>,
}

#[derive(Debug, Clone)]
struct CachedAnalysis {
    source_pid: Pid,
    imports: Vec<Symbol>,
    exports: Vec<Symbol>,
}

impl Irm {
    /// A manager with the given strategy.
    pub fn new(strategy: Strategy) -> Irm {
        Irm {
            strategy: Some(strategy),
            ..Irm::default()
        }
    }

    /// The active strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy.unwrap_or(Strategy::Cutoff)
    }

    /// The cached bin for a unit, if any.
    pub fn bin(&self, name: &str) -> Option<&BinFile> {
        self.bins.get(&Symbol::intern(name))
    }

    /// Number of cached bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Drops every cached bin (forces a full rebuild).
    pub fn clear_bins(&mut self) {
        self.bins.clear();
        self.deps_cache.clear();
    }

    /// Overwrites a cached bin — used by tests and the linkage experiment
    /// to simulate stale or corrupted bin stores.
    pub fn inject_bin(&mut self, bin: BinFile) {
        self.bins.insert(bin.unit.name, bin);
    }

    /// Persists every bin file under `dir` as `<unit>.bin`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    pub fn save_bins(&self, dir: &Path) -> Result<(), CoreError> {
        let _span = trace::span("irm.save_bins").field("bins", self.bins.len());
        std::fs::create_dir_all(dir).map_err(|e| CoreError::Io(e.to_string()))?;
        for (name, bin) in &self.bins {
            let path = dir.join(format!("{name}.bin"));
            let bytes = bin.to_bytes();
            trace::counter(names::BIN_BYTES_WRITTEN, bytes.len() as u64);
            std::fs::write(&path, bytes).map_err(|e| CoreError::Io(e.to_string()))?;
        }
        Ok(())
    }

    /// Loads every `*.bin` under `dir` into the bin store.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] or [`CoreError::CorruptBin`].
    pub fn load_bins(&mut self, dir: &Path) -> Result<usize, CoreError> {
        let _span = trace::span("irm.load_bins");
        let mut n = 0;
        let entries = std::fs::read_dir(dir).map_err(|e| CoreError::Io(e.to_string()))?;
        for entry in entries {
            let entry = entry.map_err(|e| CoreError::Io(e.to_string()))?;
            if entry.path().extension().is_some_and(|e| e == "bin") {
                let bytes =
                    std::fs::read(entry.path()).map_err(|e| CoreError::Io(e.to_string()))?;
                trace::counter(names::BIN_BYTES_READ, bytes.len() as u64);
                let bin = BinFile::from_bytes(&bytes)?;
                self.bins.insert(bin.unit.name, bin);
                n += 1;
            }
        }
        Ok(n)
    }

    /// Analyzes dependencies and returns the topological build order.
    ///
    /// # Errors
    ///
    /// Parse errors, unresolved or duplicate exports, or an import cycle.
    pub fn plan(&mut self, project: &Project) -> Result<Vec<Symbol>, CoreError> {
        let analyses = self.analyze_all(project)?;
        let exporters = exporters(&analyses)?;
        topo_order(project, &analyses, &exporters)
    }

    fn analyze_all(
        &mut self,
        project: &Project,
    ) -> Result<HashMap<Symbol, CachedAnalysis>, CoreError> {
        let mut out = HashMap::new();
        for f in project.files() {
            let sp = source_pid(&f.text);
            let cached = self.deps_cache.get(&f.name);
            let a = match cached {
                Some(c) if c.source_pid == sp => {
                    trace::counter(names::DEPS_CACHE_HITS, 1);
                    c.clone()
                }
                _ => {
                    trace::counter(names::DEPS_CACHE_MISSES, 1);
                    let _span = trace::span(names::SPAN_ANALYZE).field("unit", f.name.as_str());
                    let a = analyze_source(f.name, &f.text)?;
                    let c = CachedAnalysis {
                        source_pid: sp,
                        imports: a.imports,
                        exports: a.exports,
                    };
                    self.deps_cache.insert(f.name, c.clone());
                    c
                }
            };
            out.insert(f.name, a);
        }
        Ok(out)
    }

    /// Builds the project: recompiles what the strategy requires, reuses
    /// the rest.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] from analysis or compilation.
    pub fn build(&mut self, project: &Project) -> Result<BuildReport, CoreError> {
        let strategy = self.strategy();
        let analyses = self.analyze_all(project)?;
        let exporters = exporters(&analyses)?;
        let order = topo_order(project, &analyses, &exporters)?;
        let _build_span = trace::span(names::SPAN_BUILD)
            .field("strategy", strategy)
            .field("units", order.len());

        let mut report = BuildReport {
            strategy,
            order: order.clone(),
            ..BuildReport::default()
        };
        // Environments materialized this build (fresh or rehydrated).
        let mut envs: HashMap<Symbol, Rc<Bindings>> = HashMap::new();
        let mut recompiled_set: HashMap<Symbol, bool> = HashMap::new();

        for name in &order {
            let file = project
                .files()
                .iter()
                .find(|f| f.name == *name)
                .expect("ordered units exist");
            let analysis = &analyses[name];
            let sp = analysis.source_pid;
            // Import units in deterministic (sorted-name) slot order.
            let import_units: Vec<Symbol> = analysis
                .imports
                .iter()
                .map(|n| exporters[n])
                .collect::<Vec<_>>()
                .dedup_stable();

            let decision = self.decide(strategy, *name, file, sp, &import_units, &recompiled_set);
            trace::event("irm.decision")
                .field("unit", name.as_str())
                .field("kind", decision.kind());
            let needs = decision.requires_recompile();
            if needs {
                trace::counter(names::UNITS_COMPILED, 1);
            } else {
                trace::counter(names::UNITS_REUSED, 1);
                if matches!(decision, RebuildDecision::CutOff { .. }) {
                    trace::counter(names::CUTOFF_HITS, 1);
                }
            }
            report.decisions.push((*name, decision));

            if needs {
                let sources: Vec<ImportSource> = import_units
                    .iter()
                    .map(|u| {
                        let exports =
                            self.force_env(*u, &analyses, &exporters, &mut envs, &mut report)?;
                        Ok(ImportSource {
                            unit: *u,
                            pid: self.bins[u].unit.export_pid,
                            exports,
                        })
                    })
                    .collect::<Result<_, CoreError>>()?;
                let out = compile_unit(*name, &file.text, &sources)?;
                report.timings.accumulate(&out.timings);
                report
                    .warnings
                    .extend(out.warnings.iter().map(|w| (*name, w.to_string())));
                self.bins.insert(
                    *name,
                    BinFile {
                        unit: out.unit,
                        mtime: tick(),
                    },
                );
                envs.insert(*name, out.exports);
                recompiled_set.insert(*name, true);
                report.recompiled.push(*name);
            } else {
                recompiled_set.insert(*name, false);
                report.reused.push(*name);
            }
        }
        Ok(report)
    }

    /// Applies `strategy` to one unit and returns the causal verdict.
    ///
    /// Checks are ordered most-direct-cause-first, so the recorded
    /// decision names the *proximate* reason: own source before imports,
    /// import identity before import pids, pid change before cutoff.
    fn decide(
        &self,
        strategy: Strategy,
        name: Symbol,
        file: &SourceFile,
        sp: Pid,
        import_units: &[Symbol],
        recompiled_set: &HashMap<Symbol, bool>,
    ) -> RebuildDecision {
        let Some(bin) = self.bins.get(&name) else {
            return RebuildDecision::NewUnit;
        };
        let rebuilt = |u: &Symbol| recompiled_set.get(u).copied().unwrap_or(false);
        match strategy {
            Strategy::Cutoff => {
                if bin.unit.source_pid != sp {
                    return RebuildDecision::SourceChanged {
                        old: bin.unit.source_pid.to_string(),
                        new: sp.to_string(),
                    };
                }
                // Import identity drift: an export moved to a different
                // unit without this source changing.  The slot's pid
                // necessarily refers to something else now.
                let old_units: Vec<Symbol> = bin.unit.imports.iter().map(|e| e.unit).collect();
                if old_units != import_units {
                    let n = old_units.len().max(import_units.len());
                    for i in 0..n {
                        let old = old_units.get(i);
                        let new = import_units.get(i);
                        if old != new {
                            let import = new.or(old).expect("one side exists");
                            return RebuildDecision::ImportPidChanged {
                                import: import.as_str().to_string(),
                                old: bin
                                    .unit
                                    .imports
                                    .get(i)
                                    .map_or_else(|| "none".to_string(), |e| e.pid.to_string()),
                                new: new.and_then(|u| self.bins.get(u)).map_or_else(
                                    || "none".to_string(),
                                    |b| b.unit.export_pid.to_string(),
                                ),
                            };
                        }
                    }
                }
                for (e, u) in bin.unit.imports.iter().zip(import_units) {
                    let current = self.bins.get(u).map(|b| b.unit.export_pid);
                    if Some(e.pid) != current {
                        return RebuildDecision::ImportPidChanged {
                            import: u.as_str().to_string(),
                            old: e.pid.to_string(),
                            new: current.map_or_else(|| "none".to_string(), |p| p.to_string()),
                        };
                    }
                }
                // All pids line up.  If an import *was* recompiled this
                // build, that is precisely the paper's cutoff.
                if let Some(u) = import_units.iter().find(|u| rebuilt(u)) {
                    return RebuildDecision::CutOff {
                        import: u.as_str().to_string(),
                        export_pid: self.bins[u].unit.export_pid.to_string(),
                    };
                }
                RebuildDecision::Reused
            }
            Strategy::Timestamp => {
                // `make` semantics: compare stamps only.  Old/new in the
                // decision are mtimes, not pids.
                if bin.mtime < file.mtime {
                    return RebuildDecision::SourceChanged {
                        old: bin.mtime.to_string(),
                        new: file.mtime.to_string(),
                    };
                }
                if let Some(u) = import_units
                    .iter()
                    .find(|u| self.bins.get(u).is_none_or(|b| bin.mtime < b.mtime))
                {
                    return RebuildDecision::DependencyRebuilt {
                        import: u.as_str().to_string(),
                    };
                }
                RebuildDecision::Reused
            }
            Strategy::Classical => {
                if bin.unit.source_pid != sp {
                    return RebuildDecision::SourceChanged {
                        old: bin.unit.source_pid.to_string(),
                        new: sp.to_string(),
                    };
                }
                if let Some(u) = import_units.iter().find(|u| rebuilt(u)) {
                    return RebuildDecision::DependencyRebuilt {
                        import: u.as_str().to_string(),
                    };
                }
                RebuildDecision::Reused
            }
        }
    }

    /// Materializes a unit's export environment: live if compiled this
    /// build, otherwise rehydrated from its bin (once per build).
    fn force_env(
        &self,
        unit: Symbol,
        analyses: &HashMap<Symbol, CachedAnalysis>,
        exporters: &HashMap<Symbol, Symbol>,
        envs: &mut HashMap<Symbol, Rc<Bindings>>,
        report: &mut BuildReport,
    ) -> Result<Rc<Bindings>, CoreError> {
        if let Some(e) = envs.get(&unit) {
            trace::counter(names::ENV_CACHE_HITS, 1);
            return Ok(e.clone());
        }
        trace::counter(names::ENV_CACHE_MISSES, 1);
        // Rehydrate against the unit's own imports, recursively.
        let import_units: Vec<Symbol> = analyses[&unit]
            .imports
            .iter()
            .map(|n| exporters[n])
            .collect::<Vec<_>>()
            .dedup_stable();
        let mut ctx_envs = Vec::new();
        for u in &import_units {
            ctx_envs.push(self.force_env(*u, analyses, exporters, envs, report)?);
        }
        let bin = self.bins.get(&unit).ok_or(CoreError::UnknownUnit(unit))?;
        let t0 = Instant::now();
        let _span = trace::span(names::SPAN_REHYDRATE).field("unit", unit.as_str());
        let ctx = RehydrateContext::with_pervasives(ctx_envs.iter().map(|e| e.as_ref()));
        let (env, stats) = rehydrate(&bin.unit.env_pickle, &ctx)
            .map_err(|e| CoreError::Pickle { unit, error: e })?;
        trace::counter(names::REHYDRATE_NODES, stats.nodes as u64);
        trace::counter(names::REHYDRATE_STUBS, stats.stubs as u64);
        report.rehydrate += t0.elapsed();
        envs.insert(unit, env.clone());
        Ok(env)
    }

    /// Builds and then links & executes the whole project in topological
    /// order, returning the populated dynamic environment.
    ///
    /// # Errors
    ///
    /// Build errors, or a [`LinkError`](crate::link::LinkError) wrapped in
    /// [`CoreError::Link`].
    pub fn execute(&mut self, project: &Project) -> Result<(BuildReport, DynEnv), CoreError> {
        let report = self.build(project)?;
        let mut env = DynEnv::new();
        for name in &report.order {
            let bin = &self.bins[name];
            link_and_execute(&bin.unit, &mut env).map_err(CoreError::Link)?;
        }
        Ok((report, env))
    }
}

/// Maps each exported top-level name to the unit exporting it.
fn exporters(
    analyses: &HashMap<Symbol, CachedAnalysis>,
) -> Result<HashMap<Symbol, Symbol>, CoreError> {
    let mut map: HashMap<Symbol, Symbol> = HashMap::new();
    let mut units: Vec<&Symbol> = analyses.keys().collect();
    units.sort_by_key(|s| s.as_str());
    for unit in units {
        for name in &analyses[unit].exports {
            if let Some(prev) = map.insert(*name, *unit) {
                if prev != *unit {
                    return Err(CoreError::DuplicateExport {
                        name: *name,
                        units: vec![prev, *unit],
                    });
                }
            }
        }
    }
    Ok(map)
}

/// Topological order over the import graph; imports that resolve to no
/// project unit are errors, cycles are errors.
fn topo_order(
    project: &Project,
    analyses: &HashMap<Symbol, CachedAnalysis>,
    exporters: &HashMap<Symbol, Symbol>,
) -> Result<Vec<Symbol>, CoreError> {
    // Validate imports first for a precise error.
    for f in project.files() {
        for import in &analyses[&f.name].imports {
            if !exporters.contains_key(import) {
                return Err(CoreError::UnresolvedImport {
                    unit: f.name,
                    name: *import,
                });
            }
        }
    }
    let mut order = Vec::new();
    let mut state: HashMap<Symbol, u8> = HashMap::new(); // 1 = visiting, 2 = done
    fn visit(
        unit: Symbol,
        analyses: &HashMap<Symbol, CachedAnalysis>,
        exporters: &HashMap<Symbol, Symbol>,
        state: &mut HashMap<Symbol, u8>,
        order: &mut Vec<Symbol>,
        stack: &mut Vec<Symbol>,
    ) -> Result<(), CoreError> {
        match state.get(&unit) {
            Some(2) => return Ok(()),
            Some(1) => {
                let mut cycle: Vec<Symbol> = stack.clone();
                cycle.push(unit);
                return Err(CoreError::ImportCycle(cycle));
            }
            _ => {}
        }
        state.insert(unit, 1);
        stack.push(unit);
        let mut deps: Vec<Symbol> = analyses[&unit]
            .imports
            .iter()
            .map(|n| exporters[n])
            .collect();
        deps.sort_by_key(|s| s.as_str());
        deps.dedup();
        for d in deps {
            if d != unit {
                visit(d, analyses, exporters, state, order, stack)?;
            }
        }
        stack.pop();
        state.insert(unit, 2);
        order.push(unit);
        Ok(())
    }
    let mut units: Vec<Symbol> = project.files().iter().map(|f| f.name).collect();
    units.sort_by_key(|s| s.as_str());
    let mut stack = Vec::new();
    for u in units {
        visit(u, analyses, exporters, &mut state, &mut order, &mut stack)?;
    }
    Ok(order)
}

/// Order-preserving deduplication for small vectors.
trait DedupStable {
    fn dedup_stable(self) -> Self;
}

impl DedupStable for Vec<Symbol> {
    fn dedup_stable(self) -> Vec<Symbol> {
        let mut seen = Vec::new();
        for s in self {
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        seen
    }
}
