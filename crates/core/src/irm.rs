//! The Incremental Recompilation Manager (§6, §8).
//!
//! The IRM replaces `make`: it analyzes inter-unit dependencies
//! automatically (free module names, §8), topologically orders the
//! project, and recompiles only what a strategy deems out of date:
//!
//! * [`Strategy::Cutoff`] — the paper's contribution.  A unit recompiles
//!   iff its own source digest changed or any *import pid* changed; and
//!   because the export pid is an intrinsic hash of the interface, a
//!   recompilation that leaves the interface unchanged produces the same
//!   export pid and the rebuild cascade is cut off right there.
//! * [`Strategy::Timestamp`] — Unix `make`: rebuild when any
//!   prerequisite (source or imported bin) is newer than the bin.
//!   Cascades unconditionally.
//! * [`Strategy::Classical`] — classical separate compilation: rebuild
//!   when the source changed or any dependency was rebuilt.  (Same
//!   cascade as `make`, without clock-skew artifacts.)
//!
//! Bin files are kept in an in-memory store (persistable via
//! [`Irm::save_bins`]/[`Irm::load_bins`]); rehydrated environments are
//! cached per build so each unit's statenv is read back at most once.
//!
//! # The shared artifact store
//!
//! When a [`Store`] is attached ([`Irm::set_store`]), every *recompile*
//! verdict first probes it: a unit's compilation result is fully
//! determined by its source pid plus the export pids of its imports
//! (the paper's intrinsic-pid insight read as a cache key), so a
//! digest-verified object found under that key **is** the compile
//! result and is rehydrated instead of compiled — including on a cold
//! session with no local bins at all.  Every fresh compile publishes
//! its bin back under the same key, so projects, sessions, and
//! concurrent builds (threads and processes) share one cache.  A store
//! probe that fails verification is quarantined by the store and the
//! unit compiles transparently; a fetched bin that does not match the
//! requesting unit (same key, different file stem) is rejected the
//! same way.
//!
//! # Parallel wavefront builds
//!
//! [`Irm::build_with_jobs`] runs the same schedule on a worker pool: a
//! unit's decide/compile task is dispatched the moment every import's
//! export environment has settled, so independent subtrees of the
//! analysis DAG compile concurrently.  The scheduler is a thin layer —
//! in-degree counters over the topological order, a task channel, and
//! per-unit once-cells holding settled export environments — and it
//! produces **bit-identical results to the sequential path**: the same
//! export pids, the same [`RebuildDecision`] per unit, and a
//! [`BuildReport`] in topological order regardless of completion order.
//! `jobs <= 1` takes the sequential loop verbatim.
//!
//! # Fault tolerance
//!
//! Builds survive bad units and bad infrastructure:
//!
//! * **Keep-going scheduling** ([`FailurePolicy::KeepGoing`], `smlsc
//!   build -k`): a failing unit fails, its transitive dependents are
//!   marked [`UnitOutcome::Skipped`] with the imports that blocked
//!   them, and every independent unit still builds — in both the
//!   sequential and the wavefront schedule, with identical failed and
//!   skipped sets (the skip closure is a pure function of the failed
//!   set over the import DAG).
//! * **Panic isolation**: each unit's fallible work runs under a
//!   [`std::panic::catch_unwind`] guard.  A compiler panic becomes
//!   [`CoreError::Internal`] for that one unit (payload captured into
//!   an `irm.unit_panic` trace event); the build — and in parallel
//!   builds, the worker pool — keeps running.
//! * **Fault points**: `compile.unit`, `bin.save` and `bin.load` are
//!   named `smlsc_faults` injection points, so chaos suites can
//!   deterministically fail, tear, stall or crash any unit.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use smlsc_faults::{self as faults, points, FaultKind};
use smlsc_ids::{Pid, Symbol};
use smlsc_pickle::{rehydrate, RehydrateContext};
use smlsc_statics::env::Bindings;
use smlsc_store::Store;
use smlsc_trace::{self as trace, names, RebuildDecision};

use crate::compile::{analyze_source, compile_unit, source_pid, CompileTimings, ImportSource};
use crate::depgraph::{self, DepGraph};
use crate::link::{link_and_execute, DynEnv};
use crate::pack::{PackReader, PackWriter, PACK_FILE, PACK_VERSION};
use crate::stamps::{StampCache, StampEntry};
use crate::unit::{BinFile, BinMeta, BIN_FORMAT_VERSION};
use crate::CoreError;

/// A source file's text: either in memory, or a path read (and cached)
/// on first use.  Warm builds whose decisions all come from the stamp
/// cache never force lazy texts at all — that is the whole point: a
/// no-op build does *zero* source-file reads (the `source.reads`
/// counter proves it).
#[derive(Debug, Clone)]
pub enum SourceText {
    /// Text supplied directly (tests, workloads, the REPL).
    Inline(String),
    /// Text on disk, read lazily and at most once.
    Lazy {
        /// The file to read.
        path: PathBuf,
        /// Its size in bytes at stat time (a stamp-cache key component).
        size: u64,
        /// The cached read result, shared across project clones.
        cell: Arc<OnceLock<Result<String, String>>>,
    },
}

impl SourceText {
    /// The text, reading it from disk on first use.  Each real read
    /// bumps the `source.reads` counter; read failures are cached (a
    /// vanished file fails the same way every time).
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] when a lazy read fails.
    pub fn force(&self) -> Result<&str, CoreError> {
        match self {
            SourceText::Inline(s) => Ok(s),
            SourceText::Lazy { path, cell, .. } => {
                let res = cell.get_or_init(|| {
                    trace::counter(names::SOURCE_READS, 1);
                    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
                });
                match res {
                    Ok(s) => Ok(s.as_str()),
                    Err(e) => Err(CoreError::Io(e.clone())),
                }
            }
        }
    }

    /// The text if it is already in memory (inline, or a lazy read that
    /// has happened) — never triggers a read.
    pub fn loaded(&self) -> Option<&str> {
        match self {
            SourceText::Inline(s) => Some(s),
            SourceText::Lazy { cell, .. } => cell.get().and_then(|r| r.as_deref().ok()),
        }
    }
}

/// One source file of a project.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Unit name (file stem).
    pub name: Symbol,
    /// Source text (possibly not yet read from disk).
    pub text: SourceText,
    /// Virtual modification time.
    pub mtime: u64,
}

impl SourceFile {
    /// The source text, reading it from disk on first use.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] when a lazy read fails.
    pub fn read_text(&self) -> Result<&str, CoreError> {
        self.text.force()
    }

    /// The file's size in bytes: the stat-time size for lazy files, the
    /// in-memory length for inline ones.
    pub fn size(&self) -> u64 {
        match &self.text {
            SourceText::Inline(s) => s.len() as u64,
            SourceText::Lazy { size, .. } => *size,
        }
    }

    /// The on-disk path backing a lazy file (`None` for inline text).
    /// Only path-backed files participate in the stamp cache.
    pub fn path(&self) -> Option<&Path> {
        match &self.text {
            SourceText::Inline(_) => None,
            SourceText::Lazy { path, .. } => Some(path),
        }
    }
}

static CLOCK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn wall_nanos() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// The process-wide virtual clock backing every mtime (file edits and
/// bin writes), so `make`-style comparisons behave like a real
/// filesystem: anything written later has a strictly larger mtime.
///
/// Stamps are `max(previous + 1, wall clock in ns since the epoch)`:
/// strictly increasing (so virtual `tick()` ordering is a reliable
/// tie-break) yet comparable with real file mtimes threaded in via
/// [`observe`]/[`Project::add_with_mtime`], which is what lets
/// [`Strategy::Timestamp`] work against sources loaded from disk.
pub fn tick() -> u64 {
    use std::sync::atomic::Ordering::Relaxed;
    let now = wall_nanos();
    let prev = CLOCK
        .fetch_update(Relaxed, Relaxed, |p| Some(p.saturating_add(1).max(now)))
        .expect("clock update closure never returns None");
    prev.saturating_add(1).max(now)
}

/// Advances the virtual clock to at least `mtime`, so stamps issued
/// after observing an external mtime (a real file) compare as later.
pub fn observe(mtime: u64) {
    CLOCK.fetch_max(mtime, std::sync::atomic::Ordering::Relaxed);
}

/// A project: named source files with virtual mtimes.
///
/// Lookups and replacements go through a name→slot index, so building a
/// project of N files (and re-stating it, as the daemon's watcher does)
/// is O(N), not O(N²) — at monorepo scale the linear scan per `add` was
/// the single largest term in the warm no-op wall time.
#[derive(Debug, Clone, Default)]
pub struct Project {
    files: Vec<SourceFile>,
    index: HashMap<Symbol, usize>,
}

impl Project {
    /// An empty project.
    pub fn new() -> Project {
        Project::default()
    }

    /// Inserts `f`, replacing any existing file of the same name.
    fn upsert(&mut self, f: SourceFile) {
        match self.index.entry(f.name) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.files[*slot.get()] = f;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(self.files.len());
                self.files.push(f);
            }
        }
    }

    /// Adds a file (or replaces one of the same name), stamping it with a
    /// fresh mtime.
    pub fn add(&mut self, name: impl Into<String>, text: impl Into<String>) {
        let name = Symbol::intern(&name.into());
        self.upsert(SourceFile {
            name,
            text: SourceText::Inline(text.into()),
            mtime: tick(),
        });
    }

    /// Adds a file stamped with an externally observed mtime (nanoseconds
    /// since the epoch, e.g. a real file's modification time).  The
    /// virtual clock is advanced past `mtime` so later stamps (bin
    /// writes, edits) still compare as newer.
    pub fn add_with_mtime(&mut self, name: impl Into<String>, text: impl Into<String>, mtime: u64) {
        observe(mtime);
        let name = Symbol::intern(&name.into());
        self.upsert(SourceFile {
            name,
            text: SourceText::Inline(text.into()),
            mtime,
        });
    }

    /// Adds a lazily read on-disk file (or replaces one of the same
    /// name).  Only its metadata (`mtime`, `size`) is touched now; the
    /// text is read on first use.  See [`Project::from_dir`].
    pub fn add_lazy(
        &mut self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
        mtime_ns: u64,
        size: u64,
    ) {
        observe(mtime_ns);
        let name = Symbol::intern(&name.into());
        self.upsert(SourceFile {
            name,
            text: SourceText::Lazy {
                path: path.into(),
                size,
                cell: Arc::new(OnceLock::new()),
            },
            mtime: mtime_ns,
        });
    }

    /// Scans `dir` for `*.sml` files and builds a project of *lazy*
    /// sources: each file is stat'ed (mtime, size) but not read.  A
    /// warm build against a stamp cache then decides everything from
    /// stats alone and never opens a source file.  Files are sorted by
    /// unit name for deterministic ordering.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] when the directory cannot be listed or a file
    /// cannot be stat'ed.
    pub fn from_dir(dir: &Path) -> Result<Project, CoreError> {
        let _span = trace::span(names::SPAN_SCAN);
        let rd =
            std::fs::read_dir(dir).map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
        let mut files: Vec<(String, PathBuf, u64, u64)> = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("sml") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let meta = std::fs::metadata(&path)
                .map_err(|e| CoreError::Io(format!("{}: {e}", path.display())))?;
            let mtime_ns = meta
                .modified()
                .ok()
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            files.push((stem.to_string(), path, mtime_ns, meta.len()));
        }
        files.sort_by(|a, b| a.0.cmp(&b.0));
        let mut p = Project::new();
        for (stem, path, mtime_ns, size) in files {
            p.add_lazy(stem, path, mtime_ns, size);
        }
        Ok(p)
    }

    /// Removes a file from the project.  Any bins referencing it become
    /// stale; the next build re-resolves imports and errors if something
    /// still imports its exports.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUnit`] when no such file exists.
    pub fn remove(&mut self, name: &str) -> Result<(), CoreError> {
        let name = Symbol::intern(name);
        let Some(slot) = self.index.remove(&name) else {
            return Err(CoreError::UnknownUnit(name));
        };
        self.files.remove(slot);
        // Removal shifts every later slot down one; repair the index.
        for f in &self.files[slot..] {
            if let Some(ix) = self.index.get_mut(&f.name) {
                *ix -= 1;
            }
        }
        Ok(())
    }

    /// Replaces a file's text, bumping its mtime.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUnit`] when no such file exists.
    pub fn edit(&mut self, name: &str, text: impl Into<String>) -> Result<(), CoreError> {
        let name = Symbol::intern(name);
        let clock = tick();
        let slot = *self.index.get(&name).ok_or(CoreError::UnknownUnit(name))?;
        let f = &mut self.files[slot];
        f.text = SourceText::Inline(text.into());
        f.mtime = clock;
        Ok(())
    }

    /// Bumps a file's mtime without changing it (`touch`).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUnit`] when no such file exists.
    pub fn touch(&mut self, name: &str) -> Result<(), CoreError> {
        let name = Symbol::intern(name);
        let clock = tick();
        let slot = *self.index.get(&name).ok_or(CoreError::UnknownUnit(name))?;
        self.files[slot].mtime = clock;
        Ok(())
    }

    /// The project's files.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Looks up a file.
    pub fn file(&self, name: &str) -> Option<&SourceFile> {
        let name = Symbol::intern(name);
        self.index.get(&name).map(|&slot| &self.files[slot])
    }

    /// Total source lines across the project (forces lazy reads).
    pub fn total_lines(&self) -> usize {
        self.files
            .iter()
            .map(|f| f.read_text().map(|t| t.lines().count()).unwrap_or(0))
            .sum()
    }
}

/// The recompilation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Cutoff recompilation over intrinsic pids (the paper).
    #[default]
    Cutoff,
    /// `make`-style timestamps.
    Timestamp,
    /// Classical cascade (source changed or any dependency rebuilt).
    Classical,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Strategy::Cutoff => "cutoff",
            Strategy::Timestamp => "timestamp",
            Strategy::Classical => "classical",
        })
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parses the same names [`Display`](std::fmt::Display) emits.
    fn from_str(s: &str) -> Result<Strategy, String> {
        match s {
            "cutoff" => Ok(Strategy::Cutoff),
            "timestamp" => Ok(Strategy::Timestamp),
            "classical" => Ok(Strategy::Classical),
            other => Err(format!(
                "unknown strategy `{other}` (expected cutoff, timestamp, or classical)"
            )),
        }
    }
}

/// How a build responds to a failing unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Stop at the first failure in topological order (the default):
    /// the build returns the error and the bin store is left exactly as
    /// the sequential loop would have left it at that point.
    #[default]
    FailFast,
    /// `make -k`: a failing unit fails, its transitive dependents are
    /// skipped, and every independent unit still builds.  The build
    /// returns `Ok` with failures and skips recorded in the report.
    KeepGoing,
}

/// What happened to one unit in a build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitOutcome {
    /// Compiled fresh.
    Compiled,
    /// Reused as-is (no recompile needed).
    Reused,
    /// Recompile verdict satisfied by the shared artifact store.
    StoreHit,
    /// The unit's compile failed.
    Failed {
        /// The rendered [`CoreError`] (the error itself is in
        /// [`BuildReport::failed`]).
        error: String,
    },
    /// Not attempted: a direct import failed or was itself skipped.
    Skipped {
        /// The direct imports that blocked it, in import order.
        blocked_on: Vec<Symbol>,
    },
}

/// What one [`Irm::build`] did.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// The strategy that made the decisions.
    pub strategy: Strategy,
    /// Units in build (topological) order.
    pub order: Vec<Symbol>,
    /// Units that were recompiled.
    pub recompiled: Vec<Symbol>,
    /// Units whose bins were reused.
    pub reused: Vec<Symbol>,
    /// Units whose recompile verdict was satisfied by the shared
    /// artifact store (rehydrated, not compiled).
    pub store_hits: Vec<Symbol>,
    /// Why each unit was recompiled or reused, in build order — the
    /// causal chain behind `smlsc build --explain`.
    pub decisions: Vec<(Symbol, RebuildDecision)>,
    /// Aggregate compile-phase timings.
    pub timings: CompileTimings,
    /// Time spent rehydrating cached statenvs.
    pub rehydrate: Duration,
    /// Elaboration warnings, per unit.
    pub warnings: Vec<(Symbol, String)>,
    /// Per-unit outcome in build order — including, under
    /// [`FailurePolicy::KeepGoing`], failed and skipped units.
    pub outcomes: Vec<(Symbol, UnitOutcome)>,
    /// Units whose compile failed, with the error.  Populated only by
    /// keep-going builds; fail-fast builds return the error instead.
    pub failed: Vec<(Symbol, CoreError)>,
    /// Units never attempted because a transitive import failed
    /// (keep-going builds).
    pub skipped: Vec<Symbol>,
}

impl BuildReport {
    /// Convenience: did `name` get recompiled?
    pub fn was_recompiled(&self, name: &str) -> bool {
        self.recompiled.contains(&Symbol::intern(name))
    }

    /// Convenience: was `name` served from the shared artifact store?
    pub fn was_store_hit(&self, name: &str) -> bool {
        self.store_hits.contains(&Symbol::intern(name))
    }

    /// The decision recorded for `name`, if it was in the build.
    pub fn decision_for(&self, name: &str) -> Option<&RebuildDecision> {
        let name = Symbol::intern(name);
        self.decisions
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| d)
    }

    /// The decision kinds in build order (`name`, `kind`) — handy for
    /// asserting exact causal sequences in tests.
    pub fn decision_kinds(&self) -> Vec<(String, &'static str)> {
        self.decisions
            .iter()
            .map(|(n, d)| (n.as_str().to_string(), d.kind()))
            .collect()
    }

    /// Did every unit build?  `false` iff a keep-going build recorded
    /// any failure or skip.
    pub fn succeeded(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty()
    }

    /// The outcome recorded for `name`, if it was in the build.
    pub fn outcome_for(&self, name: &str) -> Option<&UnitOutcome> {
        let name = Symbol::intern(name);
        self.outcomes
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, o)| o)
    }

    /// True when any recorded failure is an internal (compiler-bug)
    /// error — the CLI maps these to a distinct exit code.
    pub fn any_internal_failure(&self) -> bool {
        self.failed.iter().any(|(_, e)| e.is_internal())
    }
}

/// What [`Irm::load_bins`] found on disk.
#[derive(Debug, Default)]
pub struct BinLoadOutcome {
    /// Bins loaded successfully.
    pub loaded: usize,
    /// Per-file failures (corrupt or unreadable), skipped so the rest
    /// of the cache still loads; the affected units recompile.
    pub corrupt: Vec<(PathBuf, CoreError)>,
}

/// A cached bin: decision metadata always resident, the body either in
/// memory or a lazily forced, digest-verified slice of `bins.pack`.
/// Rebuild decisions need only [`BinMeta`], so a warm build touches no
/// bodies at all.
#[derive(Debug)]
struct BinEntry {
    meta: BinMeta,
    body: BinBody,
}

#[derive(Debug)]
enum BinBody {
    /// The full bin is in memory (fresh compile, legacy `*.bin` load,
    /// injected by a test).
    Resident(BinFile),
    /// The body lives in `bins.pack`; forced (read + digest-verified +
    /// parsed) at most once, on first real use.
    Lazy {
        src: LazyBody,
        cell: OnceLock<Result<BinFile, CoreError>>,
    },
}

#[derive(Debug, Clone)]
struct LazyBody {
    pack: Arc<PackReader>,
    offset: u64,
    len: u64,
    digest: Pid,
}

impl BinEntry {
    fn resident(bin: BinFile) -> BinEntry {
        BinEntry {
            meta: bin.meta(),
            body: BinBody::Resident(bin),
        }
    }

    /// The full bin, forcing a lazy body.  The result (success or
    /// corruption) is cached: a torn body fails identically every time
    /// until the unit is quarantined.
    fn force(&self) -> Result<&BinFile, CoreError> {
        match &self.body {
            BinBody::Resident(bin) => Ok(bin),
            BinBody::Lazy { src, cell } => {
                let unit = self.meta.name;
                cell.get_or_init(|| {
                    trace::counter(names::BIN_LAZY_BODIES, 1);
                    let bytes = src
                        .pack
                        .read_body(src.offset, src.len, src.digest)
                        .map_err(|detail| CoreError::BinBodyCorrupt { unit, detail })?;
                    BinFile::from_bytes(&bytes).map_err(|e| CoreError::BinBodyCorrupt {
                        unit,
                        detail: e.to_string(),
                    })
                })
                .as_ref()
                .map_err(|e| e.clone())
            }
        }
    }

    /// The full bin if it is already in memory — never forces.
    fn forced(&self) -> Option<&BinFile> {
        match &self.body {
            BinBody::Resident(bin) => Some(bin),
            BinBody::Lazy { cell, .. } => cell.get().and_then(|r| r.as_ref().ok()),
        }
    }
}

/// The manager.
#[derive(Debug, Default)]
pub struct Irm {
    strategy: Option<Strategy>,
    bins: HashMap<Symbol, BinEntry>,
    /// Dependency-analysis cache keyed by unit, valid while the source
    /// digest (or failing that, the token digest) matches.  `Arc` so a
    /// cache hit shares the analysis instead of cloning its vectors.
    deps_cache: HashMap<Symbol, Arc<CachedAnalysis>>,
    /// The persistent `(path, mtime_ns, size) → analysis` stamp cache.
    stamps: StampCache,
    /// When set, every stamp- and token-level shortcut is bypassed:
    /// all sources are read and fully re-digested.
    paranoid: bool,
    /// The shared artifact store, if attached.
    store: Option<Arc<Store>>,
    /// Units whose in-memory bin differs (or may differ) from what
    /// `save_bins` last persisted; everything else skips its write.
    dirty: HashSet<Symbol>,
    /// The pack file the current `bins` map was loaded from, if any.
    pack_path: Option<PathBuf>,
    /// True while `bins` is byte-equivalent to `pack_path`'s contents,
    /// letting a no-op save skip rewriting the archive entirely.
    pack_synced: bool,
    /// The resolved import DAG from the previous build or the
    /// `deps.pack` sidecar.  Never trusted blindly: every build
    /// revalidates it against fresh analyses (per-unit `deps_pid`)
    /// before reuse, so a stale or torn sidecar costs a re-derivation,
    /// never a wrong schedule.
    graph: Option<Arc<DepGraph>>,
    /// True while `graph` matches what `deps.pack` on disk holds,
    /// letting a no-op save skip rewriting the sidecar.
    graph_synced: bool,
}

/// The per-file analysis record — digests plus import/export lists.
/// This is [`crate::stamps::Analysis`] so a stamp hit shares the stamp
/// cache's `Arc` directly instead of cloning the vectors per build.
type CachedAnalysis = crate::stamps::Analysis;

/// How one file's analysis was obtained (drives which counters bump).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnalysisHit {
    /// Stamp cache: the file was never even opened.
    Stamp,
    /// Deps cache via the source digest (file read + digested, same
    /// bytes as last time).
    SourcePid,
    /// Deps cache via the token digest (comment/whitespace-only edit).
    TokenPid,
    /// Fully analyzed (parsed) this build.
    Fresh,
}

/// One file's analysis plus how it was obtained; produced (possibly on
/// a worker thread) by [`analyze_one`], merged deterministically by
/// [`Irm::analyze_all`].
#[derive(Debug)]
struct FileAnalysis {
    analysis: Arc<CachedAnalysis>,
    hit: AnalysisHit,
}

/// The per-file analysis ladder.  Shares `deps_cache` and `stamps`
/// immutably so it can run on worker threads; all mutation happens in
/// the caller's merge loop.
fn analyze_one(
    f: &SourceFile,
    deps_cache: &HashMap<Symbol, Arc<CachedAnalysis>>,
    stamps: &StampCache,
    paranoid: bool,
) -> Result<FileAnalysis, CoreError> {
    // Rung 1: the stamp cache.  Path-backed files whose (unit, mtime,
    // size) stamp matches reuse the recorded analysis without a read.
    if !paranoid {
        if let Some(path) = f.path() {
            let key = path.to_string_lossy();
            if let Some(e) = stamps.lookup(&key, f.name, f.mtime, f.size()) {
                // The stamp cache shares its analysis by Arc: a hit is
                // a refcount bump, never a clone of the vectors.
                return Ok(FileAnalysis {
                    analysis: Arc::clone(&e.analysis),
                    hit: AnalysisHit::Stamp,
                });
            }
        }
    }
    let text = f.read_text()?;
    let sp = source_pid(text);
    // Rung 2: the deps cache, by source digest.
    if let Some(c) = deps_cache.get(&f.name) {
        if c.source_pid == sp {
            return Ok(FileAnalysis {
                analysis: Arc::clone(c),
                hit: AnalysisHit::SourcePid,
            });
        }
        // Rung 3: by token digest — a comment or whitespace edit keeps
        // the token stream (hence imports/exports) identical.
        if !paranoid {
            if let Some(dp) = smlsc_syntax::deps::token_pid(text) {
                if c.deps_pid == dp {
                    return Ok(FileAnalysis {
                        analysis: Arc::new(CachedAnalysis {
                            source_pid: sp,
                            deps_pid: dp,
                            imports: c.imports.clone(),
                            exports: c.exports.clone(),
                        }),
                        hit: AnalysisHit::TokenPid,
                    });
                }
            }
        }
    }
    // Rung 4: a real parse.
    let _span = trace::span(names::SPAN_ANALYZE).field("unit", f.name.as_str());
    let a = analyze_source(f.name, text)?;
    let dp = smlsc_syntax::deps::token_pid(text).unwrap_or(sp);
    Ok(FileAnalysis {
        analysis: Arc::new(CachedAnalysis {
            source_pid: sp,
            deps_pid: dp,
            imports: a.imports,
            exports: a.exports,
        }),
        hit: AnalysisHit::Fresh,
    })
}

impl Irm {
    /// A manager with the given strategy.
    pub fn new(strategy: Strategy) -> Irm {
        Irm {
            strategy: Some(strategy),
            ..Irm::default()
        }
    }

    /// A manager with the given strategy and a shared artifact store.
    pub fn with_store(strategy: Strategy, store: Arc<Store>) -> Irm {
        Irm {
            strategy: Some(strategy),
            store: Some(store),
            ..Irm::default()
        }
    }

    /// Attaches a shared artifact store; subsequent builds probe it on
    /// every recompile verdict and publish every fresh compile back.
    pub fn set_store(&mut self, store: Arc<Store>) {
        self.store = Some(store);
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The active strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy.unwrap_or(Strategy::Cutoff)
    }

    /// The cached bin for a unit, if any — forces a lazily archived
    /// body.  A corrupt body reads as "no bin" here; builds surface the
    /// corruption properly and quarantine the unit.
    pub fn bin(&self, name: &str) -> Option<&BinFile> {
        self.bins
            .get(&Symbol::intern(name))
            .and_then(|e| e.force().ok())
    }

    /// The cached bin *metadata* for a unit, if any — never touches a
    /// pickle body.
    pub fn bin_meta(&self, name: &str) -> Option<&BinMeta> {
        self.bins.get(&Symbol::intern(name)).map(|e| &e.meta)
    }

    /// Number of cached bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Drops every cached bin (forces a full rebuild).
    pub fn clear_bins(&mut self) {
        self.bins.clear();
        self.deps_cache.clear();
        self.dirty.clear();
        self.pack_synced = false;
    }

    /// Overwrites a cached bin — used by tests and the linkage experiment
    /// to simulate stale or corrupted bin stores.
    pub fn inject_bin(&mut self, bin: BinFile) {
        self.dirty.insert(bin.unit.name);
        self.bins.insert(bin.unit.name, BinEntry::resident(bin));
        self.pack_synced = false;
    }

    /// Enables or disables paranoid mode: when on, the stamp cache and
    /// token-level analysis reuse are bypassed and every source is read
    /// and fully re-digested.  Decisions must come out identical either
    /// way — a property test holds the manager to that.
    pub fn set_paranoid(&mut self, paranoid: bool) {
        self.paranoid = paranoid;
    }

    /// True when paranoid mode is on.
    pub fn paranoid(&self) -> bool {
        self.paranoid
    }

    /// Loads the persistent stamp cache from `path` (missing or corrupt
    /// files degrade silently to an empty cache).
    pub fn load_stamps(&mut self, path: &Path) {
        let _span = trace::span(names::SPAN_LOAD_STAMPS);
        self.stamps = StampCache::load(path);
    }

    /// Persists the stamp cache to `path` (atomic; no-op when clean).
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    pub fn save_stamps(&mut self, path: &Path) -> Result<(), CoreError> {
        self.stamps.save(path)
    }

    /// Number of entries in the stamp cache.
    pub fn stamp_count(&self) -> usize {
        self.stamps.len()
    }

    /// Drops a unit whose archived body turned out to be corrupt, so
    /// the next build recompiles it (alone).  Returns true if the unit
    /// was cached.
    pub fn quarantine_bin(&mut self, name: Symbol) -> bool {
        let had = self.bins.remove(&name).is_some();
        if had {
            trace::counter(names::BIN_BODY_QUARANTINED, 1);
            trace::event("irm.bin_body_quarantined").field("unit", name.as_str());
            self.dirty.remove(&name);
            self.pack_synced = false;
        }
        had
    }

    /// Persists every bin under `dir` as one indexed archive,
    /// `bins.pack`, and deletes any legacy per-unit `*.bin` files it
    /// replaces (the migration path).
    ///
    /// The archive is staged to a temp file and `rename(2)`d into place,
    /// so a crash mid-save can never tear it.  When nothing changed
    /// since the pack was loaded, the save is a complete no-op.  Bodies
    /// that are still lazy (never forced this session) are copied
    /// byte-for-byte from the old archive without parsing.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`]/[`CoreError::BinIo`] on filesystem failures.
    pub fn save_bins(&mut self, dir: &Path) -> Result<(), CoreError> {
        let _span = trace::span("irm.save_bins").field("bins", self.bins.len());
        let pack_path = dir.join(PACK_FILE);
        if self.dirty.is_empty()
            && self.pack_synced
            && self.pack_path.as_deref() == Some(&pack_path)
            && pack_path.is_file()
        {
            // The archive stands; the import-DAG sidecar may still need
            // its first write (e.g. a warm build over a pre-sidecar
            // cache directory).
            self.save_deps(dir)?;
            return Ok(());
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
        let mut names_sorted: Vec<Symbol> = self.bins.keys().copied().collect();
        names_sorted.sort_by_key(|n| n.as_str());
        let mut writer = PackWriter::create(&pack_path)?;
        let mut quarantined: Vec<Symbol> = Vec::new();
        for name in &names_sorted {
            let entry = &self.bins[name];
            // Materialize the body bytes: resident/forced bins
            // serialize; still-lazy bodies copy raw from the old pack —
            // unless that pack is a legacy format, in which case the
            // body is parsed and re-encoded so the migrated archive
            // carries only current-format bodies.
            let bytes = match (&entry.body, entry.forced()) {
                (_, Some(bin)) => bin.to_bytes(),
                (BinBody::Lazy { src, .. }, None) => {
                    let raw = src.pack.read_body(src.offset, src.len, src.digest);
                    let upgraded = raw.and_then(|b| {
                        if src.pack.version() == PACK_VERSION {
                            Ok(b)
                        } else {
                            BinFile::from_bytes(&b)
                                .map(|bin| bin.to_bytes())
                                .map_err(|e| e.to_string())
                        }
                    });
                    match upgraded {
                        Ok(b) => b,
                        Err(detail) => {
                            // The old archive's body is bad (torn,
                            // digest mismatch, or a forced failure):
                            // quarantine this unit, keep the rest.
                            trace::event("irm.bin_body_quarantined")
                                .field("unit", name.as_str())
                                .field("error", detail);
                            quarantined.push(*name);
                            continue;
                        }
                    }
                }
                (BinBody::Resident(_), None) => unreachable!("resident bodies are always forced"),
            };
            if faults::active() {
                match faults::check(points::BIN_SAVE, name.as_str()) {
                    Some(FaultKind::Io) => {
                        return Err(bin_io(
                            *name,
                            &pack_path,
                            faults::io_error(points::BIN_SAVE, name.as_str()),
                        ));
                    }
                    Some(FaultKind::Torn) => {
                        // A torn body write: the archive keeps a prefix
                        // of the real bytes (zero-padded to length)
                        // under the *true* digest, so only lazy
                        // verification of this one unit can catch it.
                        let mut torn = bytes.clone();
                        let keep = torn.len() / 2;
                        for b in &mut torn[keep..] {
                            *b = 0;
                        }
                        let digest = Pid::of_bytes(&bytes);
                        writer.add(&entry.meta, &torn, digest)?;
                        continue;
                    }
                    _ => {}
                }
            }
            trace::counter(names::BIN_BYTES_WRITTEN, bytes.len() as u64);
            let digest = Pid::of_bytes(&bytes);
            writer.add(&entry.meta, &bytes, digest)?;
        }
        writer.finish()?;
        for unit in quarantined {
            self.bins.remove(&unit);
            trace::counter(names::BIN_BODY_QUARANTINED, 1);
        }
        // Migration: the archive now carries everything; stale per-unit
        // bin files would shadow it on the next load.
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let p = entry.path();
                if p.extension().is_some_and(|e| e == "bin") {
                    std::fs::remove_file(&p).ok();
                }
            }
        }
        self.dirty.clear();
        self.pack_path = Some(pack_path);
        self.pack_synced = true;
        self.save_deps(dir)?;
        Ok(())
    }

    /// Persists the import-DAG sidecar next to the pack when the graph
    /// changed (was derived fresh this session); a no-op when the
    /// on-disk sidecar already matches or no build has produced a graph.
    fn save_deps(&mut self, dir: &Path) -> Result<(), CoreError> {
        let Some(g) = &self.graph else {
            return Ok(());
        };
        if self.graph_synced {
            return Ok(());
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
        depgraph::save_sidecar(g, dir)?;
        self.graph_synced = true;
        Ok(())
    }

    /// Persists every bin under `dir` as legacy per-unit `<unit>.bin`
    /// files (the pre-archive format), deleting any `bins.pack` there.
    /// Kept as the eager baseline for benchmarks and for tests of the
    /// per-file crash-safety path; [`Irm::save_bins`] (the archive) is
    /// what builds use.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`]/[`CoreError::BinIo`] on filesystem failures.
    pub fn save_bins_files(&mut self, dir: &Path) -> Result<(), CoreError> {
        let _span = trace::span("irm.save_bins").field("bins", self.bins.len());
        std::fs::create_dir_all(dir)
            .map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
        let stale_pack = dir.join(PACK_FILE);
        if stale_pack.is_file() {
            std::fs::remove_file(&stale_pack)
                .map_err(|e| CoreError::Io(format!("{}: {e}", stale_pack.display())))?;
        }
        self.pack_path = None;
        self.pack_synced = false;
        let mut names_sorted: Vec<Symbol> = self.bins.keys().copied().collect();
        names_sorted.sort_by_key(|n| n.as_str());
        for name in &names_sorted {
            let path = dir.join(format!("{name}.bin"));
            if !self.dirty.contains(name) && path.is_file() {
                continue;
            }
            let bin = match self.bins[name].force() {
                Ok(bin) => bin,
                Err(_) => continue, // corrupt archived body: skip, recompiles next build
            };
            let bytes = bin.to_bytes();
            if faults::active() {
                match faults::check(points::BIN_SAVE, name.as_str()) {
                    Some(FaultKind::Io) => {
                        return Err(bin_io(
                            *name,
                            &path,
                            faults::io_error(points::BIN_SAVE, name.as_str()),
                        ));
                    }
                    Some(FaultKind::Torn) => {
                        // A crash mid-write by a non-atomic writer: the
                        // final path keeps a prefix and the save
                        // "succeeds".  `load_bins` must catch it.
                        let keep = bytes.len() / 2;
                        std::fs::write(&path, &bytes[..keep])
                            .map_err(|e| bin_io(*name, &path, e))?;
                        continue;
                    }
                    _ => {}
                }
            }
            trace::counter(names::BIN_BYTES_WRITTEN, bytes.len() as u64);
            let tmp = dir.join(format!("{name}.bin.tmp-{}", std::process::id()));
            std::fs::write(&tmp, bytes).map_err(|e| bin_io(*name, &tmp, e))?;
            if let Err(e) = std::fs::rename(&tmp, &path) {
                std::fs::remove_file(&tmp).ok();
                return Err(bin_io(*name, &path, e));
            }
        }
        self.dirty.clear();
        Ok(())
    }

    /// Loads the bin cache under `dir`: the indexed `bins.pack` archive
    /// if present (reading *only* its footer index — bodies stay on
    /// disk until first use), plus any legacy per-unit `*.bin` files
    /// (which override archive entries of the same name and migrate
    /// into the archive on the next [`Irm::save_bins`]).
    ///
    /// A corrupt individual entry — or a corrupt archive — does not
    /// poison the load: it is reported in [`BinLoadOutcome::corrupt`],
    /// skipped, and the affected units simply recompile.  In paranoid
    /// mode every archived body is read and digest-verified eagerly.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] when `dir` itself cannot be listed.
    pub fn load_bins(&mut self, dir: &Path) -> Result<BinLoadOutcome, CoreError> {
        let _span = trace::span(names::SPAN_LOAD_BINS);
        let mut out = BinLoadOutcome::default();
        let pack_path = dir.join(PACK_FILE);
        let mut pack_ok = false;
        let mut pack_current = true;
        let mut pack_entries = 0usize;
        if pack_path.is_file() {
            match PackReader::open(&pack_path) {
                Ok(Some(reader)) => {
                    pack_ok = true;
                    // A legacy-format archive loads fine, but must not
                    // count as synced: the next save rewrites it in the
                    // current format.
                    pack_current = reader.version() == PACK_VERSION;
                    let reader = Arc::new(reader);
                    pack_entries = reader.entries().len();
                    for pe in reader.entries() {
                        let unit = pe.name;
                        let fault = if faults::active() {
                            faults::check(points::BIN_LOAD, unit.as_str())
                        } else {
                            None
                        };
                        if let Some(FaultKind::Io | FaultKind::Torn) = fault {
                            let e = bin_io(
                                unit,
                                &pack_path,
                                faults::io_error(points::BIN_LOAD, unit.as_str()),
                            );
                            trace::counter(names::BIN_CORRUPT, 1);
                            trace::event("irm.bin_corrupt")
                                .field("path", pack_path.display())
                                .field("error", &e);
                            out.corrupt.push((pack_path.clone(), e));
                            continue;
                        }
                        let src = LazyBody {
                            pack: Arc::clone(&reader),
                            offset: pe.offset,
                            len: pe.len,
                            digest: pe.digest,
                        };
                        if self.paranoid {
                            // Paranoid mode trusts nothing it has not
                            // verified: read every body now.
                            if let Err(detail) = reader.read_body(src.offset, src.len, src.digest) {
                                let e = CoreError::BinBodyCorrupt { unit, detail };
                                trace::counter(names::BIN_CORRUPT, 1);
                                trace::event("irm.bin_corrupt")
                                    .field("path", pack_path.display())
                                    .field("error", &e);
                                out.corrupt.push((pack_path.clone(), e));
                                continue;
                            }
                        } else {
                            trace::counter(names::BIN_INDEX_ONLY, 1);
                        }
                        self.dirty.remove(&unit);
                        self.bins.insert(
                            unit,
                            BinEntry {
                                meta: pe.meta(),
                                body: BinBody::Lazy {
                                    src,
                                    cell: OnceLock::new(),
                                },
                            },
                        );
                        out.loaded += 1;
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    // Whole-archive corruption (bad footer, torn index):
                    // every archived unit recompiles, legacy bins still
                    // load below.
                    trace::counter(names::BIN_CORRUPT, 1);
                    trace::event("irm.bin_corrupt")
                        .field("path", pack_path.display())
                        .field("error", &e);
                    out.corrupt.push((pack_path.clone(), e));
                }
            }
        }
        // Legacy per-unit bin files: still honored, override the
        // archive, and migrate into it on the next save.
        let mut legacy = 0usize;
        let entries =
            std::fs::read_dir(dir).map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "bin") {
                continue;
            }
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let unit = Symbol::intern(&stem);
            let fault = if faults::active() {
                faults::check(points::BIN_LOAD, &stem)
            } else {
                None
            };
            let loaded = if matches!(fault, Some(FaultKind::Io)) {
                Err(bin_io(
                    unit,
                    &path,
                    faults::io_error(points::BIN_LOAD, &stem),
                ))
            } else {
                std::fs::read(&path)
                    .map_err(|e| bin_io(unit, &path, e))
                    .and_then(|mut bytes| {
                        if matches!(fault, Some(FaultKind::Torn)) {
                            bytes.truncate(bytes.len() * 2 / 3);
                        }
                        trace::counter(names::BIN_BYTES_READ, bytes.len() as u64);
                        BinFile::from_bytes(&bytes)
                    })
            };
            match loaded {
                Ok(bin) => {
                    // What we just read *is* the on-disk state: clean.
                    self.dirty.remove(&bin.unit.name);
                    self.bins.insert(bin.unit.name, BinEntry::resident(bin));
                    out.loaded += 1;
                    legacy += 1;
                }
                Err(e) => {
                    trace::counter(names::BIN_CORRUPT, 1);
                    trace::event("irm.bin_corrupt")
                        .field("path", path.display())
                        .field("error", &e);
                    // A corrupt legacy bin shadows any archived entry:
                    // per-unit files are the newer write wherever both
                    // exist, so the unit's cached state is unknown —
                    // drop it and let the unit recompile.
                    if self
                        .bins
                        .get(&unit)
                        .is_some_and(|en| matches!(en.body, BinBody::Lazy { .. }))
                    {
                        self.bins.remove(&unit);
                        out.loaded -= 1;
                    }
                    out.corrupt.push((path, e));
                }
            }
        }
        self.pack_path = pack_ok.then(|| pack_path.clone());
        self.pack_synced = pack_ok
            && pack_current
            && out.corrupt.is_empty()
            && legacy == 0
            && self.bins.len() == pack_entries;
        // The import-DAG sidecar rides along with the pack.  Missing or
        // corrupt reads as absent — the next build derives the graph
        // from analyses and rewrites it.
        if let Some(g) = depgraph::load_sidecar(dir) {
            self.graph = Some(Arc::new(g));
            self.graph_synced = true;
        }
        Ok(out)
    }

    /// Analyzes dependencies and returns the topological build order.
    ///
    /// # Errors
    ///
    /// Parse errors, unresolved or duplicate exports, or an import cycle.
    pub fn plan(&mut self, project: &Project) -> Result<Vec<Symbol>, CoreError> {
        let analyses = self.analyze_all(project, 1)?;
        let graph = self.dep_graph(project, &analyses)?;
        Ok(graph.order().to_vec())
    }

    /// The resolved import DAG in topological order: for every unit,
    /// the deduplicated units it imports — exactly the edges the
    /// wavefront scheduler dispatches over, so a critical path computed
    /// from this graph matches the `irm.critical_path` counter.  Served
    /// from the same caches as [`Irm::plan`], so calling it after a
    /// build re-reads no sources.
    ///
    /// # Errors
    ///
    /// Parse errors, unresolved or duplicate exports, or an import cycle.
    pub fn import_graph(
        &mut self,
        project: &Project,
    ) -> Result<Vec<(Symbol, Vec<Symbol>)>, CoreError> {
        let analyses = self.analyze_all(project, 1)?;
        let graph = self.dep_graph(project, &analyses)?;
        Ok((0..graph.len())
            .map(|i| (graph.order()[i], graph.import_units(i).to_vec()))
            .collect())
    }

    /// The resolved import DAG for this build.  Reused from the
    /// previous build or the `deps.pack` sidecar whenever every unit's
    /// `deps_pid` still matches its fresh analysis — imports and
    /// exports are functions of the token stream, so equal pids imply
    /// the identical graph *and* the identical topological order.
    /// Anything else (first build, edited interface, added or removed
    /// unit, stale or torn sidecar) re-derives from the analyses.
    fn dep_graph(
        &mut self,
        project: &Project,
        analyses: &HashMap<Symbol, Arc<CachedAnalysis>>,
    ) -> Result<Arc<DepGraph>, CoreError> {
        let _span = trace::span(names::SPAN_GRAPH).field("units", analyses.len());
        if let Some(g) = &self.graph {
            if graph_is_current(g, analyses) {
                trace::counter(names::DEPS_PACK_HITS, 1);
                return Ok(Arc::clone(g));
            }
        }
        trace::counter(names::DEPS_PACK_MISSES, 1);
        let exporters = exporters(analyses)?;
        let order = topo_order(project, analyses, &exporters)?;
        let index_of: HashMap<Symbol, usize> =
            order.iter().enumerate().map(|(i, s)| (*s, i)).collect();
        let mut deps_pids = Vec::with_capacity(order.len());
        let mut import_idx = Vec::with_capacity(order.len());
        for name in &order {
            let a = &analyses[name];
            deps_pids.push(a.deps_pid);
            let units: Vec<Symbol> = a
                .imports
                .iter()
                .map(|n| exporters[n])
                .collect::<Vec<_>>()
                .dedup_stable();
            import_idx.push(units.iter().map(|u| index_of[u]).collect());
        }
        let g = Arc::new(DepGraph::new(order, deps_pids, import_idx));
        self.graph = Some(Arc::clone(&g));
        self.graph_synced = false;
        Ok(g)
    }

    /// The dirty cone: which topological slots this build must actually
    /// schedule.  One cheap pre-pass decides every unit against its
    /// *old* bins (no import treated as rebuilt); units that require a
    /// recompile on that evidence **seed** the cone, and the cone is
    /// the seed plus its transitive dependents.  A unit outside the
    /// cone has an unchanged source, identical import pids, and no
    /// rebuilt import, so its final decision is exactly
    /// [`RebuildDecision::Reused`] — the build synthesizes it without
    /// dispatching, making scheduler work proportional to the edit's
    /// cone rather than the project size.
    fn dirty_cone(
        &self,
        graph: &DepGraph,
        analyses: &HashMap<Symbol, Arc<CachedAnalysis>>,
        file_index: &HashMap<Symbol, &SourceFile>,
    ) -> Vec<bool> {
        let _span = trace::span(names::SPAN_DIRTY).field("units", graph.len());
        let strategy = self.strategy();
        let order = graph.order();
        let mut in_cone = vec![false; order.len()];
        let mut seed = 0u64;
        for (i, name) in order.iter().enumerate() {
            // A dirty import puts the unit in the cone regardless of
            // its own state; its real decision happens at dispatch.
            if graph.import_idx(i).iter().any(|&j| in_cone[j]) {
                in_cone[i] = true;
                continue;
            }
            let decision = decide_unit(
                strategy,
                file_index[name],
                analyses[name].source_pid,
                graph.import_units(i),
                self.bins.get(name).map(|e| &e.meta),
                &|u| {
                    self.bins.get(&u).map(|e| ImportFacts {
                        export_pid: e.meta.export_pid,
                        mtime: e.meta.mtime,
                        rebuilt: false,
                    })
                },
            );
            if decision.requires_recompile() {
                in_cone[i] = true;
                seed += 1;
            }
        }
        let cone = in_cone.iter().filter(|b| **b).count() as u64;
        if seed > 0 {
            trace::counter(names::SCHED_DIRTY_SEED, seed);
        }
        if cone > 0 {
            trace::counter(names::SCHED_DIRTY_CONE, cone);
        }
        in_cone
    }

    /// Analyzes every file, cheapest evidence first — stamp cache (no
    /// read at all), then source digest, then token digest (comment and
    /// whitespace edits keep the cached analysis), then a real parse.
    /// With `jobs > 1` the per-file work fans out over a worker pool;
    /// counters, stamp updates and the returned map merge in file order
    /// either way, so results and telemetry are deterministic.
    fn analyze_all(
        &mut self,
        project: &Project,
        jobs: usize,
    ) -> Result<HashMap<Symbol, Arc<CachedAnalysis>>, CoreError> {
        let _span = trace::span(names::SPAN_ANALYZE_ALL)
            .field("files", project.files().len())
            .field("jobs", jobs);
        let files = project.files();
        let results: Vec<Result<FileAnalysis, CoreError>> = {
            let deps_cache = &self.deps_cache;
            let stamps = &self.stamps;
            let paranoid = self.paranoid;
            if jobs <= 1 || files.len() < 2 {
                files
                    .iter()
                    .map(|f| analyze_one(f, deps_cache, stamps, paranoid))
                    .collect()
            } else {
                let next = AtomicUsize::new(0);
                let slots: Vec<OnceLock<Result<FileAnalysis, CoreError>>> =
                    files.iter().map(|_| OnceLock::new()).collect();
                std::thread::scope(|scope| {
                    for _ in 0..jobs.min(files.len()) {
                        let sink = trace::fork_current();
                        let next = &next;
                        let slots = &slots;
                        scope.spawn(move || {
                            if let Some(sink) = sink {
                                trace::install(sink);
                            }
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= files.len() {
                                    break;
                                }
                                let r = analyze_one(&files[i], deps_cache, stamps, paranoid);
                                let _ = slots[i].set(r);
                            }
                            trace::uninstall();
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().expect("every analysis slot is filled"))
                    .collect()
            }
        };
        // Deterministic merge in file order: counters, stamp records,
        // deps-cache updates, and the first error (if any) all follow
        // project order regardless of worker scheduling.  Capacity
        // hints up front: growing two 100k-entry maps through repeated
        // rehashes is real, cache-hostile work at monorepo scale.
        let mut out = HashMap::with_capacity(files.len());
        self.deps_cache
            .reserve(files.len().saturating_sub(self.deps_cache.len()));
        for (f, r) in files.iter().zip(results) {
            let fa = r?;
            let stamped = !self.paranoid && f.path().is_some();
            match fa.hit {
                AnalysisHit::Stamp => trace::counter(names::STAMP_HITS, 1),
                AnalysisHit::SourcePid | AnalysisHit::TokenPid => {
                    if stamped {
                        trace::counter(names::STAMP_MISSES, 1);
                    }
                    trace::counter(names::DEPS_CACHE_HITS, 1);
                }
                AnalysisHit::Fresh => {
                    if stamped {
                        trace::counter(names::STAMP_MISSES, 1);
                    }
                    trace::counter(names::DEPS_CACHE_MISSES, 1);
                }
            }
            // A stamp hit *is* the recorded entry (same unit, mtime,
            // size, and the analysis it produced); re-recording it would
            // only clone the import/export vectors per file per build.
            if fa.hit != AnalysisHit::Stamp {
                if let Some(path) = f.path() {
                    self.stamps.record(
                        path.to_string_lossy().into_owned(),
                        StampEntry {
                            unit: f.name,
                            mtime_ns: f.mtime,
                            size: f.size(),
                            analysis: Arc::clone(&fa.analysis),
                        },
                    );
                }
            }
            self.deps_cache.insert(f.name, Arc::clone(&fa.analysis));
            out.insert(f.name, fa.analysis);
        }
        Ok(out)
    }

    /// Builds the project: recompiles what the strategy requires, reuses
    /// the rest.  Single-threaded, fail-fast; [`Irm::build_with`] is the
    /// general entry point (workers, failure policy).
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] from analysis or compilation.
    pub fn build(&mut self, project: &Project) -> Result<BuildReport, CoreError> {
        self.build_sequential(project, FailurePolicy::FailFast)
    }

    fn build_sequential(
        &mut self,
        project: &Project,
        policy: FailurePolicy,
    ) -> Result<BuildReport, CoreError> {
        let strategy = self.strategy();
        let analyses = self.analyze_all(project, 1)?;
        let graph = self.dep_graph(project, &analyses)?;
        let order = graph.order();
        let _build_span = trace::span(names::SPAN_BUILD)
            .field("strategy", strategy)
            .field("units", order.len());
        // Index files once; the loop below must not rescan the project
        // per unit (that made large builds quadratic).
        let file_index: HashMap<Symbol, &SourceFile> =
            project.files().iter().map(|f| (f.name, f)).collect();
        let in_cone = self.dirty_cone(&graph, &analyses, &file_index);

        let mut report = BuildReport {
            strategy,
            order: order.to_vec(),
            ..BuildReport::default()
        };
        // Environments materialized this build (fresh or rehydrated).
        let mut envs: HashMap<Symbol, Arc<Bindings>> = HashMap::new();
        let mut recompiled_set: HashMap<Symbol, bool> = HashMap::new();
        // Units that failed or were skipped so far (keep-going).  A unit
        // with any direct import in here is skipped — which, applied in
        // topological order, makes this exactly the failed set plus its
        // transitive dependent closure.
        let mut failed_or_skipped: HashSet<Symbol> = HashSet::new();

        for (i, name) in order.iter().enumerate() {
            if !in_cone[i] {
                // The pre-pass proved this unit's final decision is
                // `Reused` (unchanged source, identical import pids,
                // no import in the cone): record it without touching
                // the store, the stamp machinery, or the panic guard.
                synthesize_reused(&mut report, *name);
                continue;
            }
            let file = file_index[name];
            let sp = analyses[name].source_pid;
            // Import units in deterministic (sorted-name) slot order.
            let import_units = graph.import_units(i);

            if !failed_or_skipped.is_empty() {
                let blocked_on: Vec<Symbol> = import_units
                    .iter()
                    .copied()
                    .filter(|u| failed_or_skipped.contains(u))
                    .collect();
                if !blocked_on.is_empty() {
                    record_skip(&mut report, *name, blocked_on);
                    failed_or_skipped.insert(*name);
                    continue;
                }
            }

            let decision = decide_unit(
                strategy,
                file,
                sp,
                import_units,
                self.bins.get(name).map(|e| &e.meta),
                &|u| {
                    self.bins.get(&u).map(|e| ImportFacts {
                        export_pid: e.meta.export_pid,
                        mtime: e.meta.mtime,
                        rebuilt: recompiled_set.get(&u).copied().unwrap_or(false),
                    })
                },
            );
            let needs = decision.requires_recompile();

            // A recompile verdict first probes the shared artifact
            // store: the cache key is the unit's exact compile inputs,
            // so a verified object under it is the compile result.
            let store_key = match (&self.store, needs) {
                (Some(_), true) => self.store_key_for(sp, import_units),
                _ => None,
            };

            // The fallible section — store probe, import environments,
            // the compile itself — runs under a per-unit panic guard: a
            // compiler bug fails this unit, not the whole build.
            let step = isolate_unit(*name, || {
                if let Some(key) = store_key {
                    if let Some(bin) = self.try_store_fetch(key, *name, sp, import_units) {
                        return Ok(SeqStep::FromStore { key, bin });
                    }
                }
                if !needs {
                    return Ok(SeqStep::Reused);
                }
                let sources: Vec<ImportSource> = import_units
                    .iter()
                    .map(|u| {
                        let exports = self.force_env(*u, &graph, &mut envs, &mut report)?;
                        let pid = self
                            .bins
                            .get(u)
                            .map(|e| e.meta.export_pid)
                            .ok_or(CoreError::UnknownUnit(*u))?;
                        Ok(ImportSource {
                            unit: *u,
                            pid,
                            exports,
                        })
                    })
                    .collect::<Result<_, CoreError>>()?;
                compile_unit_injected(*name, file.read_text()?, &sources).map(SeqStep::Compiled)
            });

            match step {
                Ok(SeqStep::FromStore { key, bin }) => {
                    let decision = RebuildDecision::StoreHit {
                        key: key.to_string(),
                        cause: Box::new(decision),
                    };
                    trace::event("irm.decision")
                        .field("unit", name.as_str())
                        .field("kind", decision.kind());
                    report.decisions.push((*name, decision));
                    self.dirty.insert(*name);
                    self.bins.insert(*name, BinEntry::resident(bin));
                    // For dependents a store hit is a rebuild: their
                    // own verdicts compare pids exactly as they would
                    // after a compile.
                    recompiled_set.insert(*name, true);
                    report.store_hits.push(*name);
                    report.outcomes.push((*name, UnitOutcome::StoreHit));
                }
                Ok(SeqStep::Reused) => {
                    trace::event("irm.decision")
                        .field("unit", name.as_str())
                        .field("kind", decision.kind());
                    trace::counter(names::UNITS_REUSED, 1);
                    if matches!(decision, RebuildDecision::CutOff { .. }) {
                        trace::counter(names::CUTOFF_HITS, 1);
                    }
                    report.decisions.push((*name, decision));
                    recompiled_set.insert(*name, false);
                    report.reused.push(*name);
                    report.outcomes.push((*name, UnitOutcome::Reused));
                }
                Ok(SeqStep::Compiled(out)) => {
                    trace::event("irm.decision")
                        .field("unit", name.as_str())
                        .field("kind", decision.kind());
                    trace::counter(names::UNITS_COMPILED, 1);
                    report.decisions.push((*name, decision));
                    report.timings.accumulate(&out.timings);
                    report
                        .warnings
                        .extend(out.warnings.iter().map(|w| (*name, w.to_string())));
                    // Publish in canonical (mtime-zero) form so identical
                    // compiles publish bit-identical objects, then stamp.
                    let bin = BinFile {
                        unit: out.unit,
                        mtime: 0,
                    };
                    if let (Some(store), Some(key)) = (&self.store, store_key) {
                        publish_to_store(store, key, &bin);
                    }
                    self.dirty.insert(*name);
                    self.bins.insert(
                        *name,
                        BinEntry::resident(BinFile {
                            mtime: tick(),
                            ..bin
                        }),
                    );
                    envs.insert(*name, out.exports);
                    recompiled_set.insert(*name, true);
                    report.recompiled.push(*name);
                    report.outcomes.push((*name, UnitOutcome::Compiled));
                }
                Err(e) => match policy {
                    FailurePolicy::FailFast => return Err(e),
                    FailurePolicy::KeepGoing => {
                        record_failure(&mut report, *name, e);
                        failed_or_skipped.insert(*name);
                    }
                },
            }
        }
        Ok(report)
    }

    /// The artifact-store key for compiling a unit whose imports have
    /// all settled in the bin store; `None` when any import bin is
    /// missing (only possible mid-failure).
    fn store_key_for(&self, sp: Pid, import_units: &[Symbol]) -> Option<Pid> {
        let mut pids = Vec::with_capacity(import_units.len());
        for u in import_units {
            pids.push(self.bins.get(u)?.meta.export_pid);
        }
        Some(smlsc_store::cache_key(sp, &pids, BIN_FORMAT_VERSION))
    }

    /// Fetches and validates a store object for one unit.  Returns the
    /// re-stamped bin on success; on a digest failure the store has
    /// already quarantined the object, and on a semantic mismatch
    /// (valid object, different unit) the fetch is simply rejected —
    /// either way the caller compiles.
    fn try_store_fetch(
        &self,
        key: Pid,
        name: Symbol,
        sp: Pid,
        import_units: &[Symbol],
    ) -> Option<BinFile> {
        let store = self.store.as_deref()?;
        let bytes = store.get(key)?;
        match BinFile::from_bytes(&bytes) {
            Ok(mut bin)
                if store_bin_matches(&bin, name, sp, import_units, &|u| {
                    self.bins.get(&u).map(|e| e.meta.export_pid)
                }) =>
            {
                bin.mtime = tick();
                Some(bin)
            }
            _ => {
                trace::event(names::STORE_REJECT_EVENT).field("unit", name.as_str());
                None
            }
        }
    }

    /// Builds the project on up to `jobs` worker threads, dispatching a
    /// unit the moment all of its imports have settled (a *wavefront*
    /// over the analysis DAG).
    ///
    /// Decisions, export pids and the report are identical to
    /// [`Irm::build`] for any `jobs`: a unit's verdict depends only on
    /// its own old bin and the final state of its imports, both of which
    /// are fixed before the unit is dispatched.  `jobs <= 1` runs the
    /// sequential loop itself.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] from analysis or compilation.  On error the bin
    /// store is updated exactly as the sequential build would have left
    /// it: every unit topologically before the first (lowest-index)
    /// failing unit is merged, nothing at or after it is.
    pub fn build_with_jobs(
        &mut self,
        project: &Project,
        jobs: usize,
    ) -> Result<BuildReport, CoreError> {
        self.build_with(project, jobs, FailurePolicy::FailFast)
    }

    /// The general build entry point: up to `jobs` workers under
    /// `policy`.  For any `jobs`, the report (decisions, outcomes,
    /// failed and skipped sets, export pids) is identical to the
    /// sequential build under the same policy.
    ///
    /// # Errors
    ///
    /// Analysis errors (parse, unresolved import, cycle) always fail the
    /// build — there is no per-unit scope to confine them to.  Compile
    /// failures fail the build only under [`FailurePolicy::FailFast`];
    /// under [`FailurePolicy::KeepGoing`] they are recorded in
    /// [`BuildReport::failed`] and the build returns `Ok`.
    pub fn build_with(
        &mut self,
        project: &Project,
        jobs: usize,
        policy: FailurePolicy,
    ) -> Result<BuildReport, CoreError> {
        // Quarantine-and-retry: a lazily archived body that turns out
        // to be corrupt (torn write, bit rot) surfaces as
        // `BinBodyCorrupt` mid-build.  Drop just that unit's cache
        // entry and rebuild — it recompiles alone, and since its source
        // is unchanged its export pid comes out identical, so
        // dependents cut off.  Each retry removes at least one cached
        // entry, so the loop is bounded by the cache size.
        loop {
            let result = if jobs <= 1 {
                self.build_sequential(project, policy)
            } else {
                self.build_parallel(project, jobs, policy)
            };
            match result {
                Err(CoreError::BinBodyCorrupt { unit, .. }) => {
                    if !self.quarantine_bin(unit) {
                        return Err(CoreError::BinBodyCorrupt {
                            unit,
                            detail: "corrupt body persisted after quarantine".into(),
                        });
                    }
                }
                Ok(report)
                    if report
                        .failed
                        .iter()
                        .any(|(_, e)| matches!(e, CoreError::BinBodyCorrupt { .. })) =>
                {
                    // Keep-going: the corrupt bodies are per-unit
                    // failures in the report.  Quarantine them all and
                    // retry; bail out if nothing was actually cached.
                    let mut any = false;
                    for (u, e) in &report.failed {
                        if matches!(e, CoreError::BinBodyCorrupt { .. }) {
                            any |= self.quarantine_bin(*u);
                        }
                    }
                    if !any {
                        return Ok(report);
                    }
                }
                other => return other,
            }
        }
    }

    fn build_parallel(
        &mut self,
        project: &Project,
        jobs: usize,
        policy: FailurePolicy,
    ) -> Result<BuildReport, CoreError> {
        let strategy = self.strategy();
        let analyses = self.analyze_all(project, jobs)?;
        let graph = self.dep_graph(project, &analyses)?;
        let order = graph.order();
        let n = order.len();
        let workers = jobs.min(n.max(1));
        let _build_span = trace::span(names::SPAN_BUILD)
            .field("strategy", strategy)
            .field("units", n)
            .field("jobs", workers);

        let file_index: HashMap<Symbol, &SourceFile> =
            project.files().iter().map(|f| (f.name, f)).collect();
        let in_cone = self.dirty_cone(&graph, &analyses, &file_index);

        if !in_cone.contains(&true) {
            // Nothing to schedule: the whole report is synthesized
            // reuses.  No workers, no channels, no per-unit slots.
            let mut report = BuildReport {
                strategy,
                order: order.to_vec(),
                ..BuildReport::default()
            };
            for name in order {
                synthesize_reused(&mut report, *name);
            }
            return Ok(report);
        }

        // The longest *scheduled* import chain bounds wall-clock time no
        // matter how many workers run; units outside the cone are
        // settled before the wavefront starts, so only cone edges count.
        let mut chain = vec![0usize; n];
        let mut critical_path = 0usize;
        let mut scheduled = 0usize;
        for i in 0..n {
            if !in_cone[i] {
                continue;
            }
            scheduled += 1;
            chain[i] = 1;
            for &d in graph.import_idx(i) {
                if in_cone[d] {
                    chain[i] = chain[i].max(chain[d] + 1);
                }
            }
            critical_path = critical_path.max(chain[i]);
        }
        trace::counter(names::CRITICAL_PATH, critical_path as u64);
        trace::event(names::BUILD_PARALLELISM)
            .field("critical_path", critical_path)
            .field("units", scheduled)
            .field("jobs", workers);

        let outcomes: Vec<OnceLock<Result<TaskOutcome, CoreError>>> =
            (0..n).map(|_| OnceLock::new()).collect();
        {
            // Env slots exist for *every* unit, not just the cone: a
            // cone unit may rehydrate an out-of-cone import's exports.
            let envs: Vec<EnvSlot> = (0..n).map(|_| OnceLock::new()).collect();
            let shared = ParallelShared {
                strategy,
                graph: &graph,
                file_index: &file_index,
                analyses: &analyses,
                old_bins: &self.bins,
                store: self.store.as_deref(),
                envs: &envs,
                outcomes: &outcomes,
            };

            // Scheduling state covers cone units only; an out-of-cone
            // unit is never dispatched (its slot stays empty and the
            // merge phase synthesizes its reuse).  The cone is
            // dependent-closed, so a non-cone unit never has a cone
            // import and needs no in-degree.
            let mut indegree: Vec<usize> = (0..n)
                .map(|i| {
                    if !in_cone[i] {
                        return usize::MAX; // never reaches zero
                    }
                    graph.import_idx(i).iter().filter(|&&d| in_cone[d]).count()
                })
                .collect();
            let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
            for i in 0..n {
                if !in_cone[i] {
                    continue;
                }
                for &d in graph.import_idx(i) {
                    if in_cone[d] {
                        dependents[d].push(i);
                    }
                }
            }

            let (task_tx, task_rx) = mpsc::channel::<usize>();
            let task_rx = Arc::new(Mutex::new(task_rx));
            let (done_tx, done_rx) = mpsc::channel::<(usize, bool)>();

            std::thread::scope(|scope| {
                for w in 0..workers {
                    let task_rx = Arc::clone(&task_rx);
                    let done_tx = done_tx.clone();
                    let sink = trace::fork_current();
                    let shared = &shared;
                    scope.spawn(move || {
                        if let Some(sink) = sink {
                            trace::install(sink);
                        }
                        {
                            let _worker_span = trace::span(names::SPAN_WORKER).field("worker", w);
                            loop {
                                let msg = {
                                    let rx = task_rx.lock().unwrap_or_else(|e| e.into_inner());
                                    rx.recv()
                                };
                                let Ok(i) = msg else { break };
                                // The per-unit panic guard: a panicking
                                // compiler fails this unit, never the
                                // worker (the pool survives and drains).
                                let res =
                                    isolate_unit(shared.graph.order()[i], || shared.run_task(i));
                                let ok = res.is_ok();
                                let _ = shared.outcomes[i].set(res);
                                if done_tx.send((i, ok)).is_err() {
                                    break;
                                }
                            }
                        }
                        trace::uninstall();
                    });
                }
                drop(done_tx);

                // Coordinator: dispatch the in-degree-0 wavefront, then
                // release dependents as completions arrive.
                //
                // Fail-fast: after the first error, only units
                // topologically *before* the lowest failing index are
                // still dispatched — exactly the set the sequential
                // loop would have processed.
                //
                // Keep-going: a failure *poisons* its dependents.
                // Poisoned units are never dispatched; they complete
                // synthetically right here (poisoning their own
                // dependents in turn) so in-degrees keep draining and
                // every independent unit still runs.  Their outcome
                // slots stay empty — the merge phase reads an empty
                // slot as "skipped".
                let mut inflight = 0usize;
                let mut min_err: Option<usize> = None;
                let mut blocked = vec![false; n];
                for (i, deg) in indegree.iter().enumerate() {
                    if *deg == 0 && task_tx.send(i).is_ok() {
                        inflight += 1;
                    }
                }
                while inflight > 0 {
                    let Ok((i, ok)) = done_rx.recv() else {
                        break; // a worker died; scope propagates its panic
                    };
                    inflight -= 1;
                    match policy {
                        FailurePolicy::FailFast => {
                            if !ok {
                                min_err = Some(min_err.map_or(i, |k| k.min(i)));
                                continue;
                            }
                            for &d in &dependents[i] {
                                indegree[d] -= 1;
                                if indegree[d] == 0
                                    && min_err.is_none_or(|k| d < k)
                                    && task_tx.send(d).is_ok()
                                {
                                    inflight += 1;
                                }
                            }
                        }
                        FailurePolicy::KeepGoing => {
                            let mut worklist: Vec<(usize, bool)> = vec![(i, !ok)];
                            while let Some((u, poison)) = worklist.pop() {
                                for &d in &dependents[u] {
                                    if poison {
                                        blocked[d] = true;
                                    }
                                    indegree[d] -= 1;
                                    if indegree[d] == 0 {
                                        if blocked[d] {
                                            worklist.push((d, true));
                                        } else if task_tx.send(d).is_ok() {
                                            inflight += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                drop(task_tx); // hang up; workers drain and exit
            });
        }

        // Merge in topological order — the report is deterministic no
        // matter which worker finished when.
        let mut report = BuildReport {
            strategy,
            order: order.to_vec(),
            ..BuildReport::default()
        };
        match policy {
            FailurePolicy::FailFast => {
                let mut failure: Option<CoreError> = None;
                // The lowest failing topo index; the sequential loop
                // would have stopped there, so everything before it
                // merges and it reports.
                let limit = outcomes
                    .iter()
                    .position(|slot| matches!(slot.get(), Some(Err(_))))
                    .unwrap_or(n);
                for (i, slot) in outcomes.into_iter().enumerate() {
                    if !in_cone[i] {
                        // The sequential loop would have recorded the
                        // synthesized reuse up to its stopping point.
                        if i < limit {
                            synthesize_reused(&mut report, order[i]);
                        }
                        continue;
                    }
                    let Some(res) = slot.into_inner() else {
                        continue; // gated off by an earlier failure
                    };
                    match res {
                        Ok(out) => {
                            if i >= limit {
                                continue; // completed past the error point
                            }
                            self.merge_outcome(order[i], out, &mut report);
                        }
                        Err(e) => {
                            if i == limit && failure.is_none() {
                                failure = Some(e);
                            }
                        }
                    }
                }
                match failure {
                    Some(e) => Err(e),
                    None => Ok(report),
                }
            }
            FailurePolicy::KeepGoing => {
                // Failed units have `Err` slots; poisoned units were
                // never dispatched and have *empty* slots.  Walking in
                // topological order, a skipped unit's blockers (direct
                // imports in the failed-or-skipped set) have always
                // been classified already — the same closure the
                // sequential loop computes.
                let mut failed_or_skipped: HashSet<Symbol> = HashSet::new();
                for (i, slot) in outcomes.into_iter().enumerate() {
                    let name = order[i];
                    if !in_cone[i] {
                        // Never dispatched *and* never poisoned: the
                        // cone is dependent-closed, so a failure can
                        // only block units inside it.
                        synthesize_reused(&mut report, name);
                        continue;
                    }
                    match slot.into_inner() {
                        Some(Ok(out)) => self.merge_outcome(name, out, &mut report),
                        Some(Err(e)) => {
                            record_failure(&mut report, name, e);
                            failed_or_skipped.insert(name);
                        }
                        None => {
                            let blocked_on: Vec<Symbol> = graph
                                .import_units(i)
                                .iter()
                                .copied()
                                .filter(|u| failed_or_skipped.contains(u))
                                .collect();
                            record_skip(&mut report, name, blocked_on);
                            failed_or_skipped.insert(name);
                        }
                    }
                }
                Ok(report)
            }
        }
    }

    /// Merges one completed wavefront task into the bin store and the
    /// report; always called in topological order.
    fn merge_outcome(&mut self, name: Symbol, out: TaskOutcome, report: &mut BuildReport) {
        let TaskOutcome {
            decision,
            new_bin,
            from_store,
            timings,
            warnings,
            rehydrate,
        } = out;
        report.decisions.push((name, decision));
        match new_bin {
            Some(bin) => {
                self.bins.insert(name, BinEntry::resident(bin));
                self.dirty.insert(name);
                if from_store {
                    report.store_hits.push(name);
                    report.outcomes.push((name, UnitOutcome::StoreHit));
                } else {
                    report.recompiled.push(name);
                    report.outcomes.push((name, UnitOutcome::Compiled));
                }
            }
            None => {
                report.reused.push(name);
                report.outcomes.push((name, UnitOutcome::Reused));
            }
        }
        report.timings.accumulate(&timings);
        report
            .warnings
            .extend(warnings.into_iter().map(|w| (name, w)));
        report.rehydrate += rehydrate;
    }

    /// Materializes a unit's export environment: live if compiled this
    /// build, otherwise rehydrated from its bin (once per build).
    fn force_env(
        &self,
        unit: Symbol,
        graph: &DepGraph,
        envs: &mut HashMap<Symbol, Arc<Bindings>>,
        report: &mut BuildReport,
    ) -> Result<Arc<Bindings>, CoreError> {
        if let Some(e) = envs.get(&unit) {
            trace::counter(names::ENV_CACHE_HITS, 1);
            return Ok(e.clone());
        }
        trace::counter(names::ENV_CACHE_MISSES, 1);
        // Rehydrate against the unit's own imports, recursively.
        let slot = graph.index_of(unit).ok_or(CoreError::UnknownUnit(unit))?;
        let mut ctx_envs = Vec::new();
        for &d in graph.import_idx(slot) {
            ctx_envs.push(self.force_env(graph.order()[d], graph, envs, report)?);
        }
        let bin = self
            .bins
            .get(&unit)
            .ok_or(CoreError::UnknownUnit(unit))?
            .force()?;
        let t0 = Instant::now();
        let _span = trace::span(names::SPAN_REHYDRATE).field("unit", unit.as_str());
        let ctx = RehydrateContext::with_pervasives(ctx_envs.iter().map(|e| e.as_ref()));
        let (env, stats) = rehydrate(&bin.unit.env_pickle, &ctx)
            .map_err(|e| CoreError::Pickle { unit, error: e })?;
        trace::counter(names::REHYDRATE_NODES, stats.nodes as u64);
        trace::counter(names::REHYDRATE_STUBS, stats.stubs as u64);
        report.rehydrate += t0.elapsed();
        envs.insert(unit, env.clone());
        Ok(env)
    }

    /// Builds and then links & executes the whole project in topological
    /// order, returning the populated dynamic environment.
    ///
    /// # Errors
    ///
    /// Build errors, or a [`LinkError`](crate::link::LinkError) wrapped in
    /// [`CoreError::Link`].
    pub fn execute(&mut self, project: &Project) -> Result<(BuildReport, DynEnv), CoreError> {
        self.execute_with_jobs(project, 1)
    }

    /// [`Irm::execute`] with the build phase on `jobs` workers (linking
    /// and execution stay sequential — they are effectful and ordered).
    ///
    /// # Errors
    ///
    /// Same as [`Irm::execute`].
    pub fn execute_with_jobs(
        &mut self,
        project: &Project,
        jobs: usize,
    ) -> Result<(BuildReport, DynEnv), CoreError> {
        // Linking forces every body.  A corrupt archived body found
        // here quarantines the unit and rebuilds (it recompiles alone,
        // pids unchanged), then linking restarts.  Bounded: each retry
        // removes one cached entry.
        loop {
            let report = self.build_with_jobs(project, jobs)?;
            let mut env = DynEnv::new();
            let mut bad_unit = None;
            for name in &report.order {
                let entry = self.bins.get(name).ok_or(CoreError::UnknownUnit(*name))?;
                match entry.force() {
                    Ok(bin) => {
                        link_and_execute(&bin.unit, &mut env).map_err(CoreError::Link)?;
                    }
                    Err(CoreError::BinBodyCorrupt { unit, detail }) => {
                        bad_unit = Some((unit, detail));
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            let Some((unit, detail)) = bad_unit else {
                return Ok((report, env));
            };
            if !self.quarantine_bin(unit) {
                return Err(CoreError::BinBodyCorrupt { unit, detail });
            }
        }
    }
}

/// What a strategy may consult about one import: the import's *current*
/// bin state as of the dependent's decision point.  Imports settle
/// before their dependents in both the sequential and the wavefront
/// schedule, so these facts are final — which is exactly why cutoff
/// decisions are order-independent and the parallel build is
/// deterministic.
#[derive(Debug, Clone, Copy)]
struct ImportFacts {
    export_pid: Pid,
    mtime: u64,
    rebuilt: bool,
}

/// Applies `strategy` to one unit and returns the causal verdict.
///
/// Checks are ordered most-direct-cause-first, so the recorded decision
/// names the *proximate* reason: own source before imports, import
/// identity before import pids, pid change before cutoff.
///
/// Shared by the sequential loop and the wavefront workers; the only
/// inputs are the unit's old bin and the per-import facts closure, so
/// both schedules decide identically by construction.
fn decide_unit(
    strategy: Strategy,
    file: &SourceFile,
    sp: Pid,
    import_units: &[Symbol],
    own_bin: Option<&BinMeta>,
    facts: &dyn Fn(Symbol) -> Option<ImportFacts>,
) -> RebuildDecision {
    let Some(bin) = own_bin else {
        return RebuildDecision::NewUnit;
    };
    let rebuilt = |u: &Symbol| facts(*u).is_some_and(|f| f.rebuilt);
    match strategy {
        Strategy::Cutoff => {
            if bin.source_pid != sp {
                return RebuildDecision::SourceChanged {
                    old: bin.source_pid.to_string(),
                    new: sp.to_string(),
                };
            }
            // Import identity drift: an export moved to a different
            // unit without this source changing.  The slot's pid
            // necessarily refers to something else now.  (Checked
            // without allocating — this runs once per unit per build.)
            if bin.imports.len() != import_units.len()
                || bin
                    .imports
                    .iter()
                    .zip(import_units)
                    .any(|(e, u)| e.unit != *u)
            {
                let n = bin.imports.len().max(import_units.len());
                for i in 0..n {
                    let old = bin.imports.get(i).map(|e| e.unit);
                    let new = import_units.get(i).copied();
                    if old != new {
                        let import = new.or(old).expect("one side exists");
                        return RebuildDecision::ImportPidChanged {
                            import: import.as_str().to_string(),
                            old: bin
                                .imports
                                .get(i)
                                .map_or_else(|| "none".to_string(), |e| e.pid.to_string()),
                            new: new
                                .and_then(facts)
                                .map_or_else(|| "none".to_string(), |f| f.export_pid.to_string()),
                        };
                    }
                }
            }
            for (e, u) in bin.imports.iter().zip(import_units) {
                let current = facts(*u).map(|f| f.export_pid);
                if Some(e.pid) != current {
                    return RebuildDecision::ImportPidChanged {
                        import: u.as_str().to_string(),
                        old: e.pid.to_string(),
                        new: current.map_or_else(|| "none".to_string(), |p| p.to_string()),
                    };
                }
            }
            // All pids line up.  If an import *was* recompiled this
            // build, that is precisely the paper's cutoff.
            if let Some(u) = import_units.iter().find(|u| rebuilt(u)) {
                return RebuildDecision::CutOff {
                    import: u.as_str().to_string(),
                    export_pid: facts(*u)
                        .map_or_else(|| "none".to_string(), |f| f.export_pid.to_string()),
                };
            }
            RebuildDecision::Reused
        }
        Strategy::Timestamp => {
            // `make` semantics: compare stamps only.  Old/new in the
            // decision are mtimes, not pids.
            if bin.mtime < file.mtime {
                return RebuildDecision::SourceChanged {
                    old: bin.mtime.to_string(),
                    new: file.mtime.to_string(),
                };
            }
            if let Some(u) = import_units
                .iter()
                .find(|u| facts(**u).is_none_or(|f| bin.mtime < f.mtime))
            {
                return RebuildDecision::DependencyRebuilt {
                    import: u.as_str().to_string(),
                };
            }
            RebuildDecision::Reused
        }
        Strategy::Classical => {
            if bin.source_pid != sp {
                return RebuildDecision::SourceChanged {
                    old: bin.source_pid.to_string(),
                    new: sp.to_string(),
                };
            }
            if let Some(u) = import_units.iter().find(|u| rebuilt(u)) {
                return RebuildDecision::DependencyRebuilt {
                    import: u.as_str().to_string(),
                };
            }
            RebuildDecision::Reused
        }
    }
}

/// Semantic validation of a fetched store object: the digest already
/// matched (the store checked it), but the cache key does not encode
/// the unit *name*, so identical source under a different file stem
/// hits the same slot.  The object is only usable if it is literally
/// the unit we are about to compile — same name, same source pid, and
/// the same import edges slot for slot.
fn store_bin_matches(
    bin: &BinFile,
    name: Symbol,
    sp: Pid,
    import_units: &[Symbol],
    export_pid_of: &dyn Fn(Symbol) -> Option<Pid>,
) -> bool {
    bin.unit.name == name
        && bin.unit.source_pid == sp
        && bin.unit.imports.len() == import_units.len()
        && bin
            .unit
            .imports
            .iter()
            .zip(import_units)
            .all(|(edge, &u)| edge.unit == u && export_pid_of(u) == Some(edge.pid))
}

/// What the fallible section of one sequential unit resolved to.
enum SeqStep {
    /// No recompile needed; the existing bin stands.
    Reused,
    /// The recompile verdict was satisfied by the artifact store.
    FromStore { key: Pid, bin: BinFile },
    /// A fresh compile.
    Compiled(crate::compile::CompileOutput),
}

/// Runs one unit's fallible work under a panic guard: a panicking
/// compiler fails *that unit* with [`CoreError::Internal`] — payload
/// captured into an `irm.unit_panic` trace event — instead of tearing
/// down the build or, in parallel builds, the worker pool.
pub(crate) fn isolate_unit<T>(
    name: Symbol,
    f: impl FnOnce() -> Result<T, CoreError>,
) -> Result<T, CoreError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            trace::event(names::UNIT_PANIC_EVENT)
                .field("unit", name.as_str())
                .field("payload", &message);
            Err(CoreError::Internal {
                unit: name,
                message,
            })
        }
    }
}

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`compile_unit`] behind the `compile.unit` fault point.  An injected
/// `panic` unwinds out of the check itself (and is caught by the unit's
/// panic guard); `io`/`torn` become a plain per-unit failure.
fn compile_unit_injected(
    name: Symbol,
    source: &str,
    sources: &[ImportSource],
) -> Result<crate::compile::CompileOutput, CoreError> {
    if faults::active() && faults::check(points::COMPILE_UNIT, name.as_str()).is_some() {
        return Err(CoreError::Injected {
            unit: name,
            point: points::COMPILE_UNIT,
        });
    }
    compile_unit(name, source, sources)
}

/// Records a unit the dirty-cone pre-pass proved reusable, without
/// dispatching it: same decision, counters and report entries the full
/// decide path would have produced (the pre-pass guarantees the final
/// decision is exactly `Reused` — never `CutOff`, which needs a rebuilt
/// import, impossible outside the cone).
fn synthesize_reused(report: &mut BuildReport, name: Symbol) {
    trace::event("irm.decision")
        .field("unit", name.as_str())
        .field("kind", RebuildDecision::Reused.kind());
    trace::counter(names::UNITS_REUSED, 1);
    report.decisions.push((name, RebuildDecision::Reused));
    report.reused.push(name);
    report.outcomes.push((name, UnitOutcome::Reused));
}

/// True when `g` still describes exactly this set of analyses: same
/// unit set, and every unit's token digest unchanged.  Imports and
/// exports are functions of the token stream, so equal `deps_pid`s
/// imply the same export map, the same resolved imports, and (the
/// derivation being deterministic) the same topological order.
fn graph_is_current(g: &DepGraph, analyses: &HashMap<Symbol, Arc<CachedAnalysis>>) -> bool {
    g.len() == analyses.len()
        && g.order()
            .iter()
            .enumerate()
            .all(|(i, u)| analyses.get(u).is_some_and(|a| a.deps_pid == g.deps_pid(i)))
}

/// Records one failed unit (keep-going): counter, event, report entry.
fn record_failure(report: &mut BuildReport, name: Symbol, error: CoreError) {
    trace::counter(names::UNITS_FAILED, 1);
    trace::event("irm.unit_failed")
        .field("unit", name.as_str())
        .field("error", &error);
    report.outcomes.push((
        name,
        UnitOutcome::Failed {
            error: error.to_string(),
        },
    ));
    report.failed.push((name, error));
}

/// Records one skipped unit (keep-going): a synthesized
/// [`RebuildDecision::Skipped`] naming the direct imports that blocked
/// it, so `--explain` shows the causal chain of a failure too.
fn record_skip(report: &mut BuildReport, name: Symbol, blocked_on: Vec<Symbol>) {
    trace::counter(names::UNITS_SKIPPED, 1);
    let decision = RebuildDecision::Skipped {
        blocked_on: blocked_on.iter().map(|u| u.as_str().to_string()).collect(),
    };
    trace::event("irm.decision")
        .field("unit", name.as_str())
        .field("kind", decision.kind());
    report.decisions.push((name, decision));
    report
        .outcomes
        .push((name, UnitOutcome::Skipped { blocked_on }));
    report.skipped.push(name);
}

/// A typed bin-file IO error naming both the unit and the path.
fn bin_io(unit: Symbol, path: &Path, e: impl std::fmt::Display) -> CoreError {
    CoreError::BinIo {
        unit,
        path: path.to_path_buf(),
        error: e.to_string(),
    }
}

/// Publishes a freshly compiled bin to the artifact store in canonical
/// form (`mtime == 0`, so identical compiles are bit-identical).
/// Best-effort: a full or unwritable store must never fail the build.
fn publish_to_store(store: &Store, key: Pid, bin: &BinFile) {
    debug_assert_eq!(bin.mtime, 0, "store objects are published canonical");
    if let Err(e) = store.put(key, &bin.to_bytes()) {
        trace::event("store.put_failed")
            .field("unit", bin.unit.name.as_str())
            .field("error", e.to_string());
    }
}

/// A settled export environment (or the error that settling produced),
/// published at most once per unit per parallel build.
type EnvSlot = OnceLock<Result<Arc<Bindings>, CoreError>>;

/// What one wavefront task resolved to; merged into the bin store and
/// the report in topological order by the coordinator.
#[derive(Debug)]
struct TaskOutcome {
    decision: RebuildDecision,
    /// `Some` iff the unit recompiled or was rehydrated from the store.
    new_bin: Option<BinFile>,
    /// The new bin came from the artifact store, not a compile.
    from_store: bool,
    timings: CompileTimings,
    warnings: Vec<String>,
    rehydrate: Duration,
}

/// Read-only build state shared by every wavefront worker.
struct ParallelShared<'a> {
    strategy: Strategy,
    /// Topological order and resolved imports, by slot and by name.
    graph: &'a DepGraph,
    file_index: &'a HashMap<Symbol, &'a SourceFile>,
    analyses: &'a HashMap<Symbol, Arc<CachedAnalysis>>,
    /// The bin store as of the start of the build.  New bins live in
    /// `outcomes` until the coordinator merges them, so old state stays
    /// readable (a unit's *own* decision reads its pre-build bin).
    old_bins: &'a HashMap<Symbol, BinEntry>,
    /// The shared artifact store, probed before compiling and published
    /// to after (same protocol as the sequential loop).
    store: Option<&'a Store>,
    envs: &'a [EnvSlot],
    outcomes: &'a [OnceLock<Result<TaskOutcome, CoreError>>],
}

impl ParallelShared<'_> {
    /// Current facts about a unit: its fresh bin if it recompiled this
    /// build, else its old bin.  Only called for *completed* units (the
    /// scheduler dispatches a unit after all its imports finish), so the
    /// outcome slot read is never racy.
    fn facts(&self, u: Symbol) -> Option<ImportFacts> {
        if let Some(j) = self.graph.index_of(u) {
            if let Some(Ok(out)) = self.outcomes[j].get() {
                if let Some(b) = &out.new_bin {
                    return Some(ImportFacts {
                        export_pid: b.unit.export_pid,
                        mtime: b.mtime,
                        rebuilt: true,
                    });
                }
            }
        }
        self.old_bins.get(&u).map(|e| ImportFacts {
            export_pid: e.meta.export_pid,
            mtime: e.meta.mtime,
            rebuilt: false,
        })
    }

    /// Decide-then-maybe-compile for one unit, on a worker thread.
    fn run_task(&self, i: usize) -> Result<TaskOutcome, CoreError> {
        let name = self.graph.order()[i];
        let file = self.file_index[&name];
        let sp = self.analyses[&name].source_pid;
        let units = self.graph.import_units(i);
        let _task = trace::span(names::SPAN_TASK).field("unit", name.as_str());

        let decision = decide_unit(
            self.strategy,
            file,
            sp,
            units,
            self.old_bins.get(&name).map(|e| &e.meta),
            &|u| self.facts(u),
        );
        if !decision.requires_recompile() {
            trace::event("irm.decision")
                .field("unit", name.as_str())
                .field("kind", decision.kind());
            trace::counter(names::UNITS_REUSED, 1);
            if matches!(decision, RebuildDecision::CutOff { .. }) {
                trace::counter(names::CUTOFF_HITS, 1);
            }
            return Ok(TaskOutcome {
                decision,
                new_bin: None,
                from_store: false,
                timings: CompileTimings::default(),
                warnings: Vec::new(),
                rehydrate: Duration::ZERO,
            });
        }

        // Recompile verdict: probe the shared artifact store first.
        // Imports have all settled (the scheduler guarantees it), so
        // the cache key is computable from their current export pids.
        let store_key = self.store.and_then(|_| {
            let mut pids = Vec::with_capacity(units.len());
            for &u in units {
                pids.push(self.facts(u)?.export_pid);
            }
            Some(smlsc_store::cache_key(sp, &pids, BIN_FORMAT_VERSION))
        });
        if let (Some(store), Some(key)) = (self.store, store_key) {
            if let Some(bytes) = store.get(key) {
                match BinFile::from_bytes(&bytes) {
                    Ok(mut bin)
                        if store_bin_matches(&bin, name, sp, units, &|u| {
                            self.facts(u).map(|f| f.export_pid)
                        }) =>
                    {
                        bin.mtime = tick();
                        let decision = RebuildDecision::StoreHit {
                            key: key.to_string(),
                            cause: Box::new(decision),
                        };
                        trace::event("irm.decision")
                            .field("unit", name.as_str())
                            .field("kind", decision.kind());
                        // No eager env publication: dependents that need
                        // the exports rehydrate them from this bin via
                        // `rehydrate_env`, exactly like a reused unit.
                        return Ok(TaskOutcome {
                            decision,
                            new_bin: Some(bin),
                            from_store: true,
                            timings: CompileTimings::default(),
                            warnings: Vec::new(),
                            rehydrate: Duration::ZERO,
                        });
                    }
                    _ => {
                        trace::event(names::STORE_REJECT_EVENT).field("unit", name.as_str());
                    }
                }
            }
        }

        trace::event("irm.decision")
            .field("unit", name.as_str())
            .field("kind", decision.kind());
        let mut rehydrate = Duration::ZERO;
        let sources: Vec<ImportSource> = self
            .graph
            .import_idx(i)
            .iter()
            .zip(units)
            .map(|(&j, &u)| {
                let exports = self.force_env(j, &mut rehydrate)?;
                // Imports settle before dependents dispatch; a missing
                // bin here is a scheduler bug, reported as such rather
                // than panicking the worker.
                let pid =
                    self.facts(u)
                        .map(|f| f.export_pid)
                        .ok_or_else(|| CoreError::Internal {
                            unit: name,
                            message: format!("import `{u}` has no settled bin at dispatch"),
                        })?;
                Ok(ImportSource {
                    unit: u,
                    pid,
                    exports,
                })
            })
            .collect::<Result<_, CoreError>>()?;
        let out = compile_unit_injected(name, file.read_text()?, &sources)?;
        trace::counter(names::UNITS_COMPILED, 1);
        // Publish the export environment *before* the completion signal,
        // so a dependent never rehydrates a freshly compiled unit.
        let _ = self.envs[i].set(Ok(out.exports.clone()));
        let bin = BinFile {
            unit: out.unit,
            mtime: 0,
        };
        if let (Some(store), Some(key)) = (self.store, store_key) {
            publish_to_store(store, key, &bin);
        }
        Ok(TaskOutcome {
            decision,
            new_bin: Some(BinFile {
                mtime: tick(),
                ..bin
            }),
            from_store: false,
            timings: out.timings,
            warnings: out.warnings.iter().map(|w| w.to_string()).collect(),
            rehydrate,
        })
    }

    /// Materializes a unit's export environment: the live compile result
    /// if it recompiled this build, else rehydrated from its (old ==
    /// current) bin.  Settled at most once per build; racing readers
    /// block on the cell, and the wait-for graph follows import edges of
    /// an acyclic DAG, so no deadlock.
    fn force_env(
        &self,
        j: usize,
        rehydrate_acc: &mut Duration,
    ) -> Result<Arc<Bindings>, CoreError> {
        if let Some(r) = self.envs[j].get() {
            trace::counter(names::ENV_CACHE_HITS, 1);
            return r.clone();
        }
        trace::counter(names::ENV_CACHE_MISSES, 1);
        self.envs[j]
            .get_or_init(|| self.rehydrate_env(j, rehydrate_acc))
            .clone()
    }

    /// Rehydrates a *reused or store-hit* unit's pickled exports against
    /// its imports' settled environments.  Compiled units never reach
    /// here: their slots are published eagerly at compile time, before
    /// any dependent is dispatched.  Store hits, like reuses, rehydrate
    /// lazily — but from the freshly fetched bin in the unit's outcome
    /// slot (on a cold session there is no old bin at all), which is
    /// safe to read because dependents only dispatch after it settles.
    fn rehydrate_env(&self, j: usize, acc: &mut Duration) -> Result<Arc<Bindings>, CoreError> {
        let unit = self.graph.order()[j];
        let mut ctx_envs = Vec::new();
        for &d in self.graph.import_idx(j) {
            ctx_envs.push(self.force_env(d, acc)?);
        }
        let new_bin = match self.outcomes[j].get() {
            Some(Ok(out)) => out.new_bin.as_ref(),
            _ => None,
        };
        let bin = match new_bin {
            Some(b) => b,
            None => match self.old_bins.get(&unit) {
                // Forcing may find a corrupt archived body; the error
                // propagates up as this unit's failure and the caller's
                // quarantine-and-retry loop recompiles it.
                Some(e) => e.force()?,
                None => return Err(CoreError::UnknownUnit(unit)),
            },
        };
        let t0 = Instant::now();
        let _span = trace::span(names::SPAN_REHYDRATE).field("unit", unit.as_str());
        let ctx = RehydrateContext::with_pervasives(ctx_envs.iter().map(|e| e.as_ref()));
        let (env, stats) = rehydrate(&bin.unit.env_pickle, &ctx)
            .map_err(|e| CoreError::Pickle { unit, error: e })?;
        trace::counter(names::REHYDRATE_NODES, stats.nodes as u64);
        trace::counter(names::REHYDRATE_STUBS, stats.stubs as u64);
        *acc += t0.elapsed();
        Ok(env)
    }
}

/// Maps each exported top-level name to the unit exporting it.
fn exporters(
    analyses: &HashMap<Symbol, Arc<CachedAnalysis>>,
) -> Result<HashMap<Symbol, Symbol>, CoreError> {
    let mut map: HashMap<Symbol, Symbol> = HashMap::new();
    let mut units: Vec<&Symbol> = analyses.keys().collect();
    units.sort_by_key(|s| s.as_str());
    for unit in units {
        for name in &analyses[unit].exports {
            if let Some(prev) = map.insert(*name, *unit) {
                if prev != *unit {
                    return Err(CoreError::DuplicateExport {
                        name: *name,
                        units: vec![prev, *unit],
                    });
                }
            }
        }
    }
    Ok(map)
}

/// Topological order over the import graph; imports that resolve to no
/// project unit are errors, cycles are errors.
fn topo_order(
    project: &Project,
    analyses: &HashMap<Symbol, Arc<CachedAnalysis>>,
    exporters: &HashMap<Symbol, Symbol>,
) -> Result<Vec<Symbol>, CoreError> {
    // Validate imports first for a precise error.
    for f in project.files() {
        for import in &analyses[&f.name].imports {
            if !exporters.contains_key(import) {
                return Err(CoreError::UnresolvedImport {
                    unit: f.name,
                    name: *import,
                });
            }
        }
    }
    let mut order = Vec::new();
    let mut state: HashMap<Symbol, u8> = HashMap::new(); // 1 = visiting, 2 = done
    fn visit(
        unit: Symbol,
        analyses: &HashMap<Symbol, Arc<CachedAnalysis>>,
        exporters: &HashMap<Symbol, Symbol>,
        state: &mut HashMap<Symbol, u8>,
        order: &mut Vec<Symbol>,
        stack: &mut Vec<Symbol>,
    ) -> Result<(), CoreError> {
        match state.get(&unit) {
            Some(2) => return Ok(()),
            Some(1) => {
                let mut cycle: Vec<Symbol> = stack.clone();
                cycle.push(unit);
                return Err(CoreError::ImportCycle(cycle));
            }
            _ => {}
        }
        state.insert(unit, 1);
        stack.push(unit);
        let mut deps: Vec<Symbol> = analyses[&unit]
            .imports
            .iter()
            .map(|n| exporters[n])
            .collect();
        deps.sort_by_key(|s| s.as_str());
        deps.dedup();
        for d in deps {
            if d != unit {
                visit(d, analyses, exporters, state, order, stack)?;
            }
        }
        stack.pop();
        state.insert(unit, 2);
        order.push(unit);
        Ok(())
    }
    let mut units: Vec<Symbol> = project.files().iter().map(|f| f.name).collect();
    units.sort_by_key(|s| s.as_str());
    let mut stack = Vec::new();
    for u in units {
        visit(u, analyses, exporters, &mut state, &mut order, &mut stack)?;
    }
    Ok(order)
}

/// Order-preserving deduplication for small vectors.
trait DedupStable {
    fn dedup_stable(self) -> Self;
}

impl DedupStable for Vec<Symbol> {
    fn dedup_stable(self) -> Vec<Symbol> {
        let mut seen = Vec::new();
        for s in self {
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        seen
    }
}
