//! The Visible Compiler: an interactive compile-and-execute session (§7).
//!
//! The paper's point is that the interactive read-eval-print loop is just
//! another *client* of the same separate-compilation primitives: each
//! input is compiled as an anonymous unit against the layered static
//! environments of everything evaluated so far, executed against the
//! layered dynamic environment, and its exports pushed as a new layer
//! (later layers shadow earlier ones).  Nothing in the loop bypasses
//! `compile`/`hash`/`execute`.

use std::sync::Arc;

use smlsc_dynamics::value::Value;
use smlsc_ids::{Pid, Symbol};
use smlsc_statics::elab::{elaborate_unit, ImportEnv, ImportedUnit};
use smlsc_statics::env::{Bindings, ValKind};
use smlsc_statics::types::format_scheme;
use smlsc_syntax::parse_unit;

use crate::hash::hash_exports;
use crate::irm::{Irm, Project};
use crate::link::verify_imports;
use crate::CoreError;

/// One evaluated layer of the session.
#[derive(Debug, Clone)]
struct Layer {
    name: Symbol,
    exports: Arc<Bindings>,
    values: Value,
}

/// What one [`Session::eval`] bound.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The synthetic unit name (`it0`, `it1`, …).
    pub unit: Symbol,
    /// The export pid of the input's interface.
    pub export_pid: Pid,
    /// Human-readable descriptions of the new bindings, e.g.
    /// `structure A : {x : int}`.
    pub bindings: Vec<String>,
    /// Elaboration warnings for this input.
    pub warnings: Vec<String>,
}

/// An interactive compile-and-execute session.
///
/// # Examples
///
/// ```
/// use smlsc_core::session::Session;
/// let mut s = Session::new();
/// s.eval("structure A = struct val x = 20 end").unwrap();
/// let out = s.eval("structure B = struct val y = A.x + 22 end").unwrap();
/// assert_eq!(out.bindings.len(), 1);
/// assert_eq!(s.show_value("B", "y").unwrap(), "42");
/// ```
#[derive(Debug, Default)]
pub struct Session {
    layers: Vec<Layer>,
    counter: u32,
    step_limit: Option<u64>,
}

impl Session {
    /// A fresh session with only the pervasives in scope.
    pub fn new() -> Session {
        Session::default()
    }

    /// Bounds each input's evaluation to `max_steps` interpreter steps
    /// (useful for interactive front ends; unbounded by default).
    pub fn set_step_limit(&mut self, max_steps: u64) {
        self.step_limit = Some(max_steps);
    }

    /// Number of evaluated layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when nothing has been evaluated.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Compiles and executes one input, layering its exports.
    ///
    /// # Errors
    ///
    /// Parse, elaboration, hash or execution failures; the session state
    /// is unchanged on error.
    pub fn eval(&mut self, source: &str) -> Result<EvalOutcome, CoreError> {
        let name = Symbol::intern(&format!("it{}", self.counter));
        let _span = smlsc_trace::span("session.eval").field("unit", name.as_str());
        // The whole compile-and-execute pipeline runs under the same
        // per-unit panic guard as IRM builds: a compiler bug fails this
        // one input with `CoreError::Internal` and the session — its
        // state untouched — keeps accepting input.
        let (elab, hash, values) = crate::irm::isolate_unit(name, || {
            let ast = parse_unit(source).map_err(|e| CoreError::Parse {
                unit: name,
                error: e,
            })?;
            let imports = ImportEnv {
                units: self
                    .layers
                    .iter()
                    .map(|l| ImportedUnit {
                        name: l.name,
                        exports: l.exports.clone(),
                    })
                    .collect(),
                shadowing: true,
            };
            let elab = elaborate_unit(&ast, &imports).map_err(|e| CoreError::Elab {
                unit: name,
                error: e,
            })?;
            let hash = hash_exports(name, &elab.exports).map_err(|e| CoreError::Hash {
                unit: name,
                error: e,
            })?;
            let import_values: Vec<Value> = self.layers.iter().map(|l| l.values.clone()).collect();
            let limit = self.step_limit.unwrap_or(u64::MAX);
            let values = smlsc_dynamics::eval::execute_limited(&elab.code, &import_values, limit)
                .map_err(|e| {
                CoreError::Link(crate::link::LinkError::Execution(e.to_string()))
            })?;
            Ok((elab, hash, values))
        })?;
        let bindings = describe_bindings(&elab.exports);
        let warnings = elab.warnings.iter().map(ToString::to_string).collect();
        self.counter += 1;
        self.layers.push(Layer {
            name,
            exports: elab.exports,
            values,
        });
        Ok(EvalOutcome {
            unit: name,
            export_pid: hash.export_pid,
            bindings,
            warnings,
        })
    }

    /// Loads a compiled project into the session through the IRM — the
    /// integration §6 of the paper describes but had "not yet
    /// implemented": the interactive loop consuming binary compiled
    /// units instead of re-elaborating source.
    ///
    /// The project is (incrementally) built, then each unit is linked in
    /// topological order: its statenv rehydrated against the already
    /// loaded units, its import pids verified, its code executed, and its
    /// exports pushed as a session layer.  Returns the build order.
    ///
    /// # Errors
    ///
    /// Build, rehydration, linkage, or execution failures; layers loaded
    /// before the failure remain.
    pub fn load_compiled(
        &mut self,
        irm: &mut Irm,
        project: &Project,
    ) -> Result<Vec<Symbol>, CoreError> {
        use std::collections::HashMap;
        let report = irm.build(project)?;
        let mut envs: HashMap<Symbol, Arc<Bindings>> = HashMap::new();
        let mut vals: HashMap<Symbol, Value> = HashMap::new();
        let mut dyn_env = crate::link::DynEnv::new();
        for name in &report.order {
            let bin = irm.bin(name.as_str()).expect("built units have bins");
            let ctx_envs: Vec<Arc<Bindings>> = bin
                .unit
                .imports
                .iter()
                .map(|e| {
                    envs.get(&e.unit)
                        .cloned()
                        .ok_or(CoreError::UnknownUnit(e.unit))
                })
                .collect::<Result<_, _>>()?;
            let ctx = smlsc_pickle::RehydrateContext::with_pervasives(
                ctx_envs.iter().map(|e| e.as_ref()),
            );
            let (exports, _) =
                smlsc_pickle::rehydrate(&bin.unit.env_pickle, &ctx).map_err(|e| {
                    CoreError::Pickle {
                        unit: *name,
                        error: e,
                    }
                })?;
            // Type-safe linkage before execution.
            verify_imports(&bin.unit, &dyn_env).map_err(CoreError::Link)?;
            let import_vals: Vec<Value> = bin
                .unit
                .imports
                .iter()
                .map(|e| vals[&e.unit].clone())
                .collect();
            let value = smlsc_dynamics::eval::execute(&bin.unit.code, &import_vals)
                .map_err(|e| CoreError::Link(crate::link::LinkError::Execution(e.to_string())))?;
            dyn_env.insert(
                *name,
                crate::link::LinkedUnit {
                    export_pid: bin.unit.export_pid,
                    values: value.clone(),
                },
            );
            envs.insert(*name, exports.clone());
            vals.insert(*name, value.clone());
            self.layers.push(Layer {
                name: *name,
                exports,
                values: value,
            });
        }
        Ok(report.order)
    }

    /// Renders the value of `Structure.member` from the latest layer
    /// exporting `Structure`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownUnit`] when no layer exports the structure or
    /// it has no such runtime member.
    pub fn show_value(&self, structure: &str, member: &str) -> Result<String, CoreError> {
        let sname = Symbol::intern(structure);
        let mname = Symbol::intern(member);
        for layer in self.layers.iter().rev() {
            let Some(str_env) = layer.exports.str(sname) else {
                continue;
            };
            let Some(str_slot) = smlsc_statics::env::str_slot(&layer.exports, sname) else {
                continue;
            };
            let Value::Record(units) = &layer.values else {
                continue;
            };
            let Value::Record(fields) = &units[str_slot as usize] else {
                continue;
            };
            let Some(vslot) = smlsc_statics::env::val_slot(&str_env.bindings, mname) else {
                continue;
            };
            return Ok(fields[vslot as usize].to_string());
        }
        Err(CoreError::UnknownUnit(sname))
    }

    /// Human-readable descriptions of everything currently in scope, most
    /// recent layer last.
    pub fn describe(&self) -> Vec<String> {
        self.layers
            .iter()
            .flat_map(|l| describe_bindings(&l.exports))
            .collect()
    }
}

/// Renders unit-level bindings as `structure A : {x : int, f : int -> int}`.
fn describe_bindings(b: &Bindings) -> Vec<String> {
    let mut out = Vec::new();
    for (name, s) in &b.strs {
        let mut parts = Vec::new();
        for (vn, vb) in &s.bindings.vals {
            let kind = match vb.kind {
                ValKind::Plain => "",
                ValKind::Con { .. } => "con ",
                ValKind::Exn => "exn ",
                ValKind::Prim(_) => "prim ",
            };
            parts.push(format!("{kind}{vn} : {}", format_scheme(&vb.scheme)));
        }
        for (tn, tc) in &s.bindings.tycons {
            parts.push(format!("type {tn}/{}", tc.arity));
        }
        for (sn, _) in &s.bindings.strs {
            parts.push(format!("structure {sn}"));
        }
        out.push(format!("structure {name} : {{{}}}", parts.join(", ")));
    }
    for (name, _) in &b.sigs {
        out.push(format!("signature {name}"));
    }
    for (name, f) in &b.fcts {
        out.push(format!("functor {name}({})", f.param_name));
    }
    out
}
