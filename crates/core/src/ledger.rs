//! The persistent build ledger: one JSON record per build, appended to
//! `builds.jsonl` next to `bins.pack`.
//!
//! PR 1 made a build observable *while it runs*; the ledger makes the
//! observations survive the process.  Every build — cold, warm, failed —
//! appends one versioned record (strategy, worker count, wall time,
//! per-phase durations, decision tallies, cache hit counters, critical
//! path, exit status), so hit-rate drift and wall-time regressions are
//! queryable across builds (`smlsc history`) and gateable in CI.
//!
//! Crash safety follows the store journal's discipline:
//!
//! * **Append-only, one line per record.**  Each append is a single
//!   `O_APPEND` write, so concurrent builds interleave whole lines, not
//!   bytes, on POSIX filesystems.
//! * **Torn-tail tolerant.**  A crash (or injected `ledger.append=torn`
//!   fault) can leave a truncated last line.  Readers skip any line that
//!   does not parse as a current-version record — the valid prefix is
//!   kept, the tail discarded — and the next append first terminates an
//!   unterminated tail so the new record never concatenates onto it.
//! * **Bounded rotation.**  When the file exceeds its byte cap, it is
//!   compacted to the newest records via tmp + rename, so the ledger is
//!   O(recent builds), never O(project lifetime).
//! * **Best-effort.**  A build is never failed by its own flight
//!   recorder: callers downgrade append errors to warnings.

use std::path::{Path, PathBuf};
use std::time::SystemTime;

use serde::{Deserialize, Serialize};
use smlsc_faults as faults;
use smlsc_trace::{self as trace, names};

use crate::irm::BuildReport;
use crate::CoreError;

/// Version of the ledger record format; readers skip other versions.
pub const LEDGER_VERSION: u32 = 1;

/// The ledger file name, next to `bins.pack` and `stamps.json`.
pub const LEDGER_FILE: &str = "builds.jsonl";

/// Default byte cap before rotation compacts the file.
const DEFAULT_MAX_BYTES: u64 = 512 * 1024;

/// Records kept by a rotation (newest first in age, oldest dropped).
const DEFAULT_KEEP_RECORDS: usize = 512;

/// One build's flight-recorder entry.  All durations are microseconds;
/// all tallies are unit counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LedgerRecord {
    /// Record-format version ([`LEDGER_VERSION`]).
    pub version: u32,
    /// Best-effort unique id (wall clock ⊕ pid).
    pub build_id: u64,
    /// Unix timestamp of the build, milliseconds.
    pub timestamp_ms: u64,
    /// The recompilation strategy (`cutoff`, `timestamp`, `classical`).
    pub strategy: String,
    /// Worker count the build ran with.
    pub jobs: u64,
    /// The host's available CPU parallelism at build time.
    pub host_parallelism: u64,
    /// Whole-build wall clock.
    pub wall_us: u64,
    /// Parse phase total across compiled units.
    pub parse_us: u64,
    /// Elaboration phase total.
    pub elaborate_us: u64,
    /// Interface-hash phase total.
    pub hash_us: u64,
    /// Dehydrate (pickle) phase total.
    pub dehydrate_us: u64,
    /// Rehydrate (unpickle) total.
    pub rehydrate_us: u64,
    /// Units compiled fresh.
    pub compiled: u64,
    /// Units reused untouched.
    pub reused: u64,
    /// Cutoff hits (dependency rebuilt, export pid unchanged).
    pub cutoff: u64,
    /// Recompile verdicts satisfied by the shared artifact store.
    pub store_hits: u64,
    /// Units skipped behind a failed import (keep-going builds).
    pub skipped: u64,
    /// Units whose compile failed.
    pub failed: u64,
    /// Stamp-cache hits (source neither read nor digested).
    pub stamp_hits: u64,
    /// Stamp-cache misses.
    pub stamp_misses: u64,
    /// Artifact-store misses.
    pub store_misses: u64,
    /// Dependency-analysis cache hits.
    pub deps_cache_hits: u64,
    /// Dependency-analysis cache misses.
    pub deps_cache_misses: u64,
    /// Source files actually read from disk.
    pub source_reads: u64,
    /// Longest import chain, in units (0 for sequential builds, which
    /// do not compute it).
    pub critical_path: u64,
    /// The process exit code the build mapped to (0 ok, 1 compile,
    /// 3 internal, 4 store/IO).
    pub exit_code: u32,
    /// 1 when the build was served by the resident daemon, 0 for an
    /// in-process CLI build.  Absent in pre-daemon ledgers (read as 0).
    pub daemon: u64,
}

// Deserialization is hand-written, not derived, so `daemon` can default
// when absent: the vendored serde derive hard-errors on missing fields,
// and a derived impl would silently drop every record written before
// the field existed from `smlsc history`, rotation, and the CI gate.
impl<'de> Deserialize<'de> for LedgerRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v.as_map("LedgerRecord")?;
        let field = |key: &str| serde::Value::map_get(m, key);
        let num = |key: &str| -> Result<u64, serde::Error> { u64::from_value(field(key)?) };
        Ok(LedgerRecord {
            version: u32::from_value(field("version")?)?,
            build_id: num("build_id")?,
            timestamp_ms: num("timestamp_ms")?,
            strategy: String::from_value(field("strategy")?)?,
            jobs: num("jobs")?,
            host_parallelism: num("host_parallelism")?,
            wall_us: num("wall_us")?,
            parse_us: num("parse_us")?,
            elaborate_us: num("elaborate_us")?,
            hash_us: num("hash_us")?,
            dehydrate_us: num("dehydrate_us")?,
            rehydrate_us: num("rehydrate_us")?,
            compiled: num("compiled")?,
            reused: num("reused")?,
            cutoff: num("cutoff")?,
            store_hits: num("store_hits")?,
            skipped: num("skipped")?,
            failed: num("failed")?,
            stamp_hits: num("stamp_hits")?,
            stamp_misses: num("stamp_misses")?,
            store_misses: num("store_misses")?,
            deps_cache_hits: num("deps_cache_hits")?,
            deps_cache_misses: num("deps_cache_misses")?,
            source_reads: num("source_reads")?,
            critical_path: num("critical_path")?,
            exit_code: u32::from_value(field("exit_code")?)?,
            daemon: match field("daemon") {
                Ok(v) => u64::from_value(v)?,
                Err(_) => 0,
            },
        })
    }
}

impl LedgerRecord {
    /// Builds a record from a finished build: decision tallies from the
    /// report, cache hit counters and the critical path from the
    /// collector, identity and timing from the caller.
    pub fn from_build(
        report: &BuildReport,
        collector: &trace::Collector,
        jobs: usize,
        wall_us: u64,
        exit_code: i32,
    ) -> LedgerRecord {
        let now_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let cutoff = report
            .decisions
            .iter()
            .filter(|(_, d)| d.kind() == "cutoff")
            .count() as u64;
        LedgerRecord {
            version: LEDGER_VERSION,
            build_id: now_ms
                .wrapping_mul(0x1_0000)
                .wrapping_add(u64::from(std::process::id() & 0xFFFF)),
            timestamp_ms: now_ms,
            strategy: report.strategy.to_string(),
            jobs: jobs as u64,
            host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            wall_us,
            parse_us: us(report.timings.parse),
            elaborate_us: us(report.timings.elaborate),
            hash_us: us(report.timings.hash),
            dehydrate_us: us(report.timings.dehydrate),
            rehydrate_us: us(report.rehydrate),
            compiled: report.recompiled.len() as u64,
            reused: report.reused.len() as u64,
            cutoff,
            store_hits: report.store_hits.len() as u64,
            skipped: report.skipped.len() as u64,
            failed: report.failed.len() as u64,
            stamp_hits: collector.counter(names::STAMP_HITS),
            stamp_misses: collector.counter(names::STAMP_MISSES),
            store_misses: collector.counter(names::STORE_MISSES),
            deps_cache_hits: collector.counter(names::DEPS_CACHE_HITS),
            deps_cache_misses: collector.counter(names::DEPS_CACHE_MISSES),
            source_reads: collector.counter(names::SOURCE_READS),
            critical_path: collector.counter(names::CRITICAL_PATH),
            exit_code: u32::try_from(exit_code).unwrap_or(u32::MAX),
            daemon: 0,
        }
    }

    /// The same record tagged as daemon-served (see the `daemon` field).
    #[must_use]
    pub fn tagged_daemon(mut self) -> LedgerRecord {
        self.daemon = 1;
        self
    }
}

fn us(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// What [`Ledger::audit`] found: the doctor's view of one ledger file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerAudit {
    /// Raw newline-terminated lines in the file.
    pub lines: usize,
    /// Lines that parse as current-version records.
    pub valid: usize,
    /// True when the file ends mid-line (crash during an append).
    pub torn_tail: bool,
}

impl LedgerAudit {
    /// True when every line is a valid record and the tail is whole.
    pub fn is_healthy(&self) -> bool {
        self.lines == self.valid && !self.torn_tail
    }
}

/// Handle on one `builds.jsonl` file.
#[derive(Debug, Clone)]
pub struct Ledger {
    path: PathBuf,
    max_bytes: u64,
    keep_records: usize,
}

impl Ledger {
    /// The ledger at an explicit path.
    pub fn new(path: impl Into<PathBuf>) -> Ledger {
        Ledger {
            path: path.into(),
            max_bytes: DEFAULT_MAX_BYTES,
            keep_records: DEFAULT_KEEP_RECORDS,
        }
    }

    /// The ledger for a project's bin directory
    /// (`<bin_dir>/builds.jsonl`, next to `bins.pack`).
    pub fn for_bin_dir(bin_dir: &Path) -> Ledger {
        Ledger::new(bin_dir.join(LEDGER_FILE))
    }

    /// Overrides the rotation caps (tests).
    #[must_use]
    pub fn with_caps(mut self, max_bytes: u64, keep_records: usize) -> Ledger {
        self.max_bytes = max_bytes;
        self.keep_records = keep_records;
        self
    }

    /// The underlying file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record as a single `O_APPEND` line write, healing a
    /// torn tail (a previous crash's unterminated line) by terminating
    /// it first so the skipped garbage never swallows this record.
    /// Rotates afterwards if the file outgrew its cap.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures (or an injected
    /// `ledger.append=io` fault).  Callers should treat this as a
    /// warning: the ledger never fails a build.
    pub fn append(&self, record: &LedgerRecord) -> Result<(), CoreError> {
        use std::io::Write;
        let json = serde_json::to_string(record).expect("ledger record serializes");
        let detail = self.path.to_string_lossy();
        let fault = faults::check(faults::points::LEDGER_APPEND, &format!("begin {detail}"));
        if matches!(fault, Some(faults::FaultKind::Io)) {
            return Err(CoreError::Io(
                faults::io_error(faults::points::LEDGER_APPEND, &detail).to_string(),
            ));
        }
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
        }
        let mut line = if self.tail_is_torn() {
            String::from("\n")
        } else {
            String::new()
        };
        line.push_str(&json);
        line.push('\n');
        // A torn fault models a crash mid-append: only a prefix of the
        // record reaches the disk and the build carries on, leaving
        // exactly the state `read` must recover from.
        if matches!(fault, Some(faults::FaultKind::Torn)) {
            line.truncate(line.len() / 2);
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| CoreError::Io(format!("{}: {e}", self.path.display())))?;
        if faults::active() {
            // Under an installed plan only, the append splits in two so
            // a `ledger.append=crash(mid)` rule can kill the process
            // with half a record on disk — the *real* torn tail the
            // next append's heal must recover from.  Production appends
            // stay a single `O_APPEND` write.
            let split = line.len() / 2;
            f.write_all(&line.as_bytes()[..split])
                .map_err(|e| CoreError::Io(format!("{}: {e}", self.path.display())))?;
            faults::check(faults::points::LEDGER_APPEND, &format!("mid {detail}"));
            f.write_all(&line.as_bytes()[split..])
                .map_err(|e| CoreError::Io(format!("{}: {e}", self.path.display())))?;
        } else {
            f.write_all(line.as_bytes())
                .map_err(|e| CoreError::Io(format!("{}: {e}", self.path.display())))?;
        }
        trace::counter(names::LEDGER_APPENDS, 1);
        drop(f);
        self.rotate_if_needed()
    }

    /// True when the file ends mid-line (no trailing newline): the
    /// signature of a crash during a previous append.
    fn tail_is_torn(&self) -> bool {
        use std::io::{Read, Seek, SeekFrom};
        let Ok(mut f) = std::fs::File::open(&self.path) else {
            return false;
        };
        let Ok(len) = f.seek(SeekFrom::End(0)) else {
            return false;
        };
        if len == 0 {
            return false;
        }
        let mut last = [0u8; 1];
        f.seek(SeekFrom::End(-1)).is_ok() && f.read_exact(&mut last).is_ok() && last[0] != b'\n'
    }

    /// Lazily streams every parseable current-version record, oldest
    /// first, one buffered line at a time — memory stays O(1 record)
    /// however long the history is, so `smlsc history`/`profile` and the
    /// CI ledger gate never materialize the whole file.  Malformed lines
    /// (torn tails, other versions, foreign garbage) are skipped, never
    /// an error — a missing file is simply an empty stream.
    pub fn stream(&self) -> impl Iterator<Item = LedgerRecord> {
        use std::io::BufRead;
        let lines = std::fs::File::open(&self.path)
            .ok()
            .map(|f| std::io::BufReader::new(f).lines());
        lines.into_iter().flatten().filter_map(|line| {
            let line = line.ok()?;
            let r = serde_json::from_str::<LedgerRecord>(&line).ok()?;
            (r.version == LEDGER_VERSION).then_some(r)
        })
    }

    /// All records of [`Self::stream`], collected.  Prefer `stream` when
    /// a running aggregate is enough.
    pub fn read(&self) -> Vec<LedgerRecord> {
        self.stream().collect()
    }

    /// Size of the ledger file in bytes (0 when missing).
    pub fn size_bytes(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }

    /// Compacts to the newest [`Self::keep_records`] records when the
    /// file exceeds its byte cap, atomically and durably
    /// ([`crate::fsutil::commit_atomic`], fault point `ledger.rotate`)
    /// so readers never observe a half-rotated ledger.
    fn rotate_if_needed(&self) -> Result<(), CoreError> {
        if self.size_bytes() <= self.max_bytes {
            return Ok(());
        }
        let records = self.read();
        let keep = records.len().saturating_sub(self.keep_records);
        let mut out = String::new();
        for r in &records[keep..] {
            out.push_str(&serde_json::to_string(r).expect("ledger record serializes"));
            out.push('\n');
        }
        crate::fsutil::commit_atomic(&self.path, out.as_bytes(), faults::points::LEDGER_ROTATE)
            .map_err(|e| CoreError::Io(format!("{}: {e}", self.path.display())))?;
        trace::counter(names::LEDGER_ROTATIONS, 1);
        Ok(())
    }

    /// Audits the file for the doctor: raw line count, parseable
    /// current-version records, and whether the tail is torn (a
    /// previous crash's unterminated last line).
    pub fn audit(&self) -> LedgerAudit {
        use std::io::BufRead;
        let mut lines = 0usize;
        let mut valid = 0usize;
        if let Ok(f) = std::fs::File::open(&self.path) {
            for line in std::io::BufReader::new(f).lines() {
                let Ok(line) = line else { break };
                lines += 1;
                if serde_json::from_str::<LedgerRecord>(&line)
                    .is_ok_and(|r| r.version == LEDGER_VERSION)
                {
                    valid += 1;
                }
            }
        }
        LedgerAudit {
            lines,
            valid,
            torn_tail: self.tail_is_torn(),
        }
    }

    /// Rewrites the file keeping only parseable current-version records
    /// (atomic + durable): the doctor's repair for torn tails and
    /// foreign garbage.  Returns how many lines were dropped.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    pub fn compact_valid(&self) -> Result<usize, CoreError> {
        let audit = self.audit();
        let dropped = audit.lines.saturating_sub(audit.valid);
        if dropped == 0 && !audit.torn_tail {
            return Ok(0);
        }
        let mut out = String::new();
        for r in self.stream() {
            out.push_str(&serde_json::to_string(&r).expect("ledger record serializes"));
            out.push('\n');
        }
        crate::fsutil::commit_atomic(&self.path, out.as_bytes(), faults::points::LEDGER_ROTATE)
            .map_err(|e| CoreError::Io(format!("{}: {e}", self.path.display())))?;
        Ok(dropped.max(1))
    }
}

/// The full machine-readable build report for `--report-json`: one JSON
/// object holding the build's ledger [`LedgerRecord`], every per-unit
/// rebuild decision, and the collector's counters and per-phase
/// histograms.
pub fn build_report_json(
    record: &LedgerRecord,
    report: &BuildReport,
    collector: &trace::Collector,
) -> String {
    let mut out = String::from("{\"record\":");
    out.push_str(&serde_json::to_string(record).expect("ledger record serializes"));
    out.push_str(",\"decisions\":[");
    for (i, (unit, decision)) in report.decisions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"unit\":");
        out.push_str(&serde_json::to_string(&unit.to_string()).expect("unit name serializes"));
        out.push_str(",\"decision\":");
        out.push_str(&decision.to_json());
        out.push('}');
    }
    out.push_str("],\"stats\":");
    out.push_str(&collector.stats_json());
    out.push('}');
    out
}

/// The `q`-quantile (0.0 ≤ q ≤ 1.0, nearest-rank) of a slice of
/// samples; 0 when empty.  Shared by `smlsc history` and tests.
pub fn quantile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, wall_us: u64) -> LedgerRecord {
        LedgerRecord {
            version: LEDGER_VERSION,
            build_id: id,
            timestamp_ms: 1000 + id,
            strategy: "cutoff".into(),
            jobs: 4,
            host_parallelism: 8,
            wall_us,
            parse_us: 10,
            elaborate_us: 20,
            hash_us: 3,
            dehydrate_us: 4,
            rehydrate_us: 5,
            compiled: 2,
            reused: 1,
            cutoff: 1,
            store_hits: 0,
            skipped: 0,
            failed: 0,
            stamp_hits: 3,
            stamp_misses: 0,
            store_misses: 0,
            deps_cache_hits: 3,
            deps_cache_misses: 0,
            source_reads: 0,
            critical_path: 2,
            exit_code: 0,
            daemon: 0,
        }
    }

    fn tmp_ledger(tag: &str) -> Ledger {
        let dir = std::env::temp_dir().join(format!(
            "smlsc-ledger-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        Ledger::new(dir.join(LEDGER_FILE))
    }

    fn cleanup(l: &Ledger) {
        std::fs::remove_dir_all(l.path().parent().unwrap()).ok();
    }

    #[test]
    fn append_and_read_round_trip() {
        let l = tmp_ledger("roundtrip");
        l.append(&record(1, 100)).unwrap();
        l.append(&record(2, 200)).unwrap();
        let back = l.read();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].build_id, 1);
        assert_eq!(back[1].wall_us, 200);
        cleanup(&l);
    }

    #[test]
    fn torn_tail_is_skipped_and_healed() {
        use std::io::Write;
        let l = tmp_ledger("torn");
        l.append(&record(1, 100)).unwrap();
        // Simulate a crash mid-append: half a record, no newline.
        let half = serde_json::to_string(&record(2, 200)).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(l.path())
            .unwrap();
        f.write_all(&half.as_bytes()[..half.len() / 2]).unwrap();
        drop(f);
        assert_eq!(l.read().len(), 1, "torn tail must be discarded");
        // The next append terminates the torn tail; nothing is lost.
        l.append(&record(3, 300)).unwrap();
        let back = l.read();
        assert_eq!(
            back.iter().map(|r| r.build_id).collect::<Vec<_>>(),
            vec![1, 3]
        );
        cleanup(&l);
    }

    #[test]
    fn pre_daemon_records_parse_with_daemon_defaulted() {
        let l = tmp_ledger("predaemon");
        // A record as serialized before the `daemon` field existed.
        let json = serde_json::to_string(&record(7, 70)).unwrap();
        let stripped = json.replace(",\"daemon\":0", "");
        assert_ne!(json, stripped, "the field must actually be stripped");
        std::fs::create_dir_all(l.path().parent().unwrap()).unwrap();
        std::fs::write(l.path(), format!("{stripped}\n")).unwrap();
        let back = l.read();
        assert_eq!(back.len(), 1, "pre-daemon ledgers keep parsing");
        assert_eq!(back[0].daemon, 0);
        assert_eq!(back[0].build_id, 7);
        // And a daemon-tagged record round-trips with the tag intact.
        l.append(&record(8, 80).tagged_daemon()).unwrap();
        let back = l.read();
        assert_eq!(back[1].daemon, 1);
        cleanup(&l);
    }

    #[test]
    fn stream_is_incremental_and_matches_read() {
        let l = tmp_ledger("stream");
        for i in 0..5 {
            l.append(&record(i, i * 10)).unwrap();
        }
        let mut it = l.stream();
        assert_eq!(it.next().unwrap().build_id, 0, "oldest first");
        assert_eq!(it.count(), 4, "remaining records stream on demand");
        assert_eq!(l.stream().last().unwrap().build_id, 4);
        assert_eq!(l.read().len(), 5, "read is stream, collected");
        cleanup(&l);
    }

    #[test]
    fn missing_and_garbage_files_degrade_gracefully() {
        let l = Ledger::new("/nonexistent/builds.jsonl");
        assert!(l.read().is_empty());
        let l = tmp_ledger("garbage");
        std::fs::create_dir_all(l.path().parent().unwrap()).unwrap();
        std::fs::write(l.path(), b"not json\n{\"version\":999}\n").unwrap();
        assert!(l.read().is_empty(), "foreign lines and versions skipped");
        l.append(&record(1, 1)).unwrap();
        assert_eq!(l.read().len(), 1);
        cleanup(&l);
    }

    #[test]
    fn rotation_keeps_the_newest_records() {
        let l = tmp_ledger("rotate").with_caps(2048, 4);
        for i in 0..32 {
            l.append(&record(i, i * 10)).unwrap();
        }
        let back = l.read();
        assert!(
            back.len() <= 8,
            "rotation bounds the file, got {}",
            back.len()
        );
        assert!(l.size_bytes() <= 4096);
        assert_eq!(back.last().unwrap().build_id, 31, "newest record survives");
        let ids: Vec<u64> = back.iter().map(|r| r.build_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "order preserved");
        cleanup(&l);
    }

    #[test]
    fn injected_torn_append_leaves_a_recoverable_ledger() {
        let l = tmp_ledger("fault-torn");
        l.append(&record(1, 100)).unwrap();
        {
            let _guard = smlsc_faults::install_scoped(smlsc_faults::FaultPlan::default().with(
                smlsc_faults::FaultRule::new(
                    smlsc_faults::points::LEDGER_APPEND,
                    smlsc_faults::FaultKind::Torn,
                ),
            ));
            l.append(&record(2, 200)).unwrap();
        }
        assert_eq!(l.read().len(), 1, "valid prefix kept, torn tail discarded");
        l.append(&record(3, 300)).unwrap();
        assert_eq!(
            l.read().iter().map(|r| r.build_id).collect::<Vec<_>>(),
            vec![1, 3]
        );
        cleanup(&l);
    }

    #[test]
    fn audit_and_compact_repair_a_mangled_ledger() {
        use std::io::Write;
        let l = tmp_ledger("audit");
        l.append(&record(1, 100)).unwrap();
        l.append(&record(2, 200)).unwrap();
        assert!(l.audit().is_healthy());
        assert_eq!(l.compact_valid().unwrap(), 0, "healthy file untouched");
        // Mangle: a garbage line plus a torn (unterminated) tail.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(l.path())
            .unwrap();
        f.write_all(b"not a record\n{\"version\":1,\"trunc")
            .unwrap();
        drop(f);
        let audit = l.audit();
        assert!(!audit.is_healthy());
        assert!(audit.torn_tail);
        assert_eq!(audit.lines - audit.valid, 2);
        assert!(l.compact_valid().unwrap() >= 2);
        let healed = l.audit();
        assert!(healed.is_healthy(), "{healed:?}");
        assert_eq!(
            l.read().iter().map(|r| r.build_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        cleanup(&l);
    }

    #[test]
    fn injected_io_append_is_an_error() {
        let l = tmp_ledger("fault-io");
        let _guard = smlsc_faults::install_scoped(smlsc_faults::FaultPlan::default().with(
            smlsc_faults::FaultRule::new(
                smlsc_faults::points::LEDGER_APPEND,
                smlsc_faults::FaultKind::Io,
            ),
        ));
        let err = l.append(&record(1, 1)).unwrap_err();
        assert!(err.is_io(), "{err}");
        assert!(l.read().is_empty());
        cleanup(&l);
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        use crate::irm::{Irm, Project, Strategy};
        let mut p = Project::new();
        p.add("a", "structure A = struct val x = 1 end");
        p.add("b", "structure B = struct val y = A.x end");
        let collector = trace::Collector::new();
        collector.install();
        let mut irm = Irm::new(Strategy::Cutoff);
        let report = irm.build(&p).unwrap();
        trace::uninstall();
        let rec = LedgerRecord::from_build(&report, &collector, 1, 42, 0);
        let json = build_report_json(&rec, &report, &collector);
        let value = serde_json::parse_value(json.as_bytes()).expect("well-formed JSON");
        let serde::Value::Map(pairs) = value else {
            panic!("top level must be an object");
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["record", "decisions", "stats"]);
        let decisions = pairs.iter().find(|(k, _)| k == "decisions").unwrap();
        let serde::Value::Seq(items) = &decisions.1 else {
            panic!("decisions must be an array");
        };
        assert_eq!(items.len(), 2, "one decision per unit");
    }

    #[test]
    fn quantiles() {
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.5), 7);
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&xs, 0.5), 50);
        assert_eq!(quantile(&xs, 0.95), 95);
        assert_eq!(quantile(&xs, 1.0), 100);
    }
}
