//! The compile pipeline: parse → dependency analysis → elaborate → hash →
//! dehydrate (§3's `compile`, with §5's hashing and §4's pickling).

use std::sync::Arc;
use std::time::{Duration, Instant};

use smlsc_ids::{Pid, Symbol};
use smlsc_pickle::{collect_external_pids, dehydrate, ContextPids, PickleOptions};
use smlsc_statics::elab::{elaborate_unit, ImportEnv, ImportedUnit};
use smlsc_statics::env::Bindings;
use smlsc_syntax::{deps::free_module_names, parse_unit};
use smlsc_trace::{self as trace, names};

use crate::hash::hash_exports;
use crate::unit::{CompiledUnit, ImportEdge};
use crate::CoreError;

/// One resolved import available to a compilation.
#[derive(Debug, Clone)]
pub struct ImportSource {
    /// The imported unit's name.
    pub unit: Symbol,
    /// Its current export pid.
    pub pid: Pid,
    /// Its (rehydrated or freshly compiled) export environment.
    pub exports: Arc<Bindings>,
}

/// Wall-clock cost of each phase of one compilation — the measurements
/// behind experiment E1 (§6's "how much does the manager add to a
/// compile").
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileTimings {
    /// Lexing + parsing.
    pub parse: Duration,
    /// Elaboration (type checking + translation).
    pub elaborate: Duration,
    /// Intrinsic-pid hashing.
    pub hash: Duration,
    /// Dehydration of the export environment.
    pub dehydrate: Duration,
}

impl CompileTimings {
    /// Adds another compile's timings into this accumulator.
    pub fn accumulate(&mut self, other: &CompileTimings) {
        self.parse += other.parse;
        self.elaborate += other.elaborate;
        self.hash += other.hash;
        self.dehydrate += other.dehydrate;
    }

    /// Total time across phases.
    pub fn total(&self) -> Duration {
        self.parse + self.elaborate + self.hash + self.dehydrate
    }
}

/// The result of compiling one unit.
#[derive(Debug)]
pub struct CompileOutput {
    /// The compiled unit (ready to write to a bin file).
    pub unit: CompiledUnit,
    /// The export environment, live, for same-session dependents.
    pub exports: Arc<Bindings>,
    /// Phase timings.
    pub timings: CompileTimings,
    /// Elaboration warnings (inexhaustive/redundant matches).
    pub warnings: Vec<smlsc_statics::ElabWarning>,
}

/// Digest of a source text (used for cutoff's "did the source change").
pub fn source_pid(text: &str) -> Pid {
    Pid::of_bytes(text.as_bytes())
}

/// Compiles one unit against its resolved imports (in slot order).
///
/// # Errors
///
/// Parse, elaboration, hashing, or pickling failures, wrapped in
/// [`CoreError`].
pub fn compile_unit(
    name: Symbol,
    source: &str,
    imports: &[ImportSource],
) -> Result<CompileOutput, CoreError> {
    let t0 = Instant::now();
    let ast = {
        let _span = trace::span(names::SPAN_PARSE).field("unit", name.as_str());
        parse_unit(source).map_err(|e| CoreError::Parse {
            unit: name,
            error: e,
        })?
    };
    let parse = t0.elapsed();

    let t0 = Instant::now();
    let elab_span = trace::span(names::SPAN_ELABORATE).field("unit", name.as_str());
    let import_env = ImportEnv {
        units: imports
            .iter()
            .map(|i| ImportedUnit {
                name: i.unit,
                exports: i.exports.clone(),
            })
            .collect(),
        ..ImportEnv::default()
    };
    let elab = elaborate_unit(&ast, &import_env).map_err(|e| CoreError::Elab {
        unit: name,
        error: e,
    })?;
    drop(elab_span);
    let elaborate = t0.elapsed();

    let t0 = Instant::now();
    let hash = {
        let _span = trace::span(names::SPAN_HASH).field("unit", name.as_str());
        hash_exports(name, &elab.exports).map_err(|e| CoreError::Hash {
            unit: name,
            error: e,
        })?
    };
    let hash_time = t0.elapsed();

    let t0 = Instant::now();
    let dehydrate_span = trace::span(names::SPAN_DEHYDRATE).field("unit", name.as_str());
    let external = collect_external_pids(imports.iter().map(|i| i.exports.as_ref()));
    let pickle = dehydrate(
        &elab.exports,
        &ContextPids::indexed(external),
        &PickleOptions::default(),
    )
    .map_err(|e| CoreError::Pickle {
        unit: name,
        error: e,
    })?;
    drop(dehydrate_span);
    trace::counter(names::PICKLE_NODES, pickle.stats.nodes as u64);
    trace::counter(names::PICKLE_STUBS, pickle.stats.stubs as u64);
    trace::counter(names::PICKLE_BACKREFS, pickle.stats.backrefs as u64);
    let dehydrate_time = t0.elapsed();

    Ok(CompileOutput {
        unit: CompiledUnit {
            name,
            source_pid: source_pid(source),
            imports: imports
                .iter()
                .map(|i| ImportEdge {
                    unit: i.unit,
                    pid: i.pid,
                })
                .collect(),
            export_pid: hash.export_pid,
            env_pickle: pickle.bytes,
            code: elab.code,
        },
        exports: elab.exports,
        timings: CompileTimings {
            parse,
            elaborate,
            hash: hash_time,
            dehydrate: dehydrate_time,
        },
        warnings: elab.warnings,
    })
}

/// The result of the IRM's automatic dependency analysis (§8) on one
/// source file.
#[derive(Debug, Clone)]
pub struct SourceAnalysis {
    /// Free module names — the unit's imports, sorted.
    pub imports: Vec<Symbol>,
    /// Top-level names the unit binds — its exports, in source order.
    pub exports: Vec<Symbol>,
}

/// Parses a source and returns its imports and exports.
///
/// # Errors
///
/// [`CoreError::Parse`] when the source does not parse.
pub fn analyze_source(name: Symbol, source: &str) -> Result<SourceAnalysis, CoreError> {
    let ast = parse_unit(source).map_err(|e| CoreError::Parse {
        unit: name,
        error: e,
    })?;
    Ok(SourceAnalysis {
        imports: free_module_names(&ast),
        exports: ast.bound_names(),
    })
}
