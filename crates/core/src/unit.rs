//! Compiled units and bin files (§3, §4).
//!
//! A [`CompiledUnit`] is the paper's
//! `Unit = statenv × code × imports × exports`: the dehydrated static
//! environment, the serialized code object, the list of import pids, and
//! the export pid.  [`BinFile`] is its on-disk form.

use serde::{Deserialize, Serialize};
use smlsc_dynamics::ir::Ir;
use smlsc_ids::{Pid, Symbol};

use crate::CoreError;

/// One import edge: the imported unit's name and the export pid it had
/// when this unit was compiled.  The linker refuses to run against
/// anything else (type-safe linkage, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportEdge {
    /// The imported unit.
    pub unit: Symbol,
    /// Its export pid at compile time.
    pub pid: Pid,
}

/// A compiled compilation unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledUnit {
    /// The unit's name (source file stem).
    pub name: Symbol,
    /// Digest of the source text this unit was compiled from.
    pub source_pid: Pid,
    /// Imports in slot order (slot `i` feeds `Ir::Import(i)`).
    pub imports: Vec<ImportEdge>,
    /// The intrinsic pid of the exported static environment.
    pub export_pid: Pid,
    /// The dehydrated exported static environment.
    pub env_pickle: Vec<u8>,
    /// The code object.
    pub code: Ir,
}

/// A bin file: a compiled unit plus bookkeeping for the recompilation
/// strategies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinFile {
    /// The compiled unit.
    pub unit: CompiledUnit,
    /// Virtual modification time of the bin (for the timestamp baseline).
    pub mtime: u64,
}

/// The decision-relevant metadata of a bin file: everything the
/// recompilation strategies ([`decide_unit`](crate::irm)) and the store
/// cache key need, without the pickle body or code object.  This is what
/// the `bins.pack` footer index carries per unit, so a warm build makes
/// every rebuild decision without parsing a single pickle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinMeta {
    /// The unit's name.
    pub name: Symbol,
    /// Digest of the source text the unit was compiled from.
    pub source_pid: Pid,
    /// Imports in slot order.
    pub imports: Vec<ImportEdge>,
    /// The intrinsic pid of the exported static environment.
    pub export_pid: Pid,
    /// Virtual modification time of the bin.
    pub mtime: u64,
}

const BIN_MAGIC: &[u8; 8] = b"SMLCBIN2";
const LEGACY_BIN_MAGIC: &[u8; 8] = b"SMLCBIN1";

/// Version of the bin-file container format (mirrored by the trailing
/// digit of the magic).  Artifact-store cache keys fold this in, so
/// bumping it when [`BinFile`]'s serialization changes invalidates
/// every shared-store entry instead of misreading it.
pub const BIN_FORMAT_VERSION: u32 = 2;

impl BinFile {
    /// The bin's decision-relevant metadata (no pickle, no code).
    pub fn meta(&self) -> BinMeta {
        BinMeta {
            name: self.unit.name,
            source_pid: self.unit.source_pid,
            imports: self.unit.imports.clone(),
            export_pid: self.unit.export_pid,
            mtime: self.mtime,
        }
    }

    /// Serializes the bin file.
    ///
    /// The container is the `pickle::wire` little-endian format end to
    /// end: metadata fields, the raw static-environment pickle bytes
    /// (already the custom byte format of `smlsc-pickle`), then the code
    /// object via [`crate::ircodec`], sealed by a 16-byte self-digest of
    /// the payload (a bit flip anywhere is detected even for standalone
    /// `*.bin` files that no archive index covers).  No JSON anywhere on
    /// the warm path.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.unit.env_pickle.len() + 256);
        out.extend_from_slice(BIN_MAGIC);
        let mut w = smlsc_pickle::wire::Writer::new();
        w.str(self.unit.name.as_str());
        w.u128(self.unit.source_pid.as_raw());
        w.u128(self.unit.export_pid.as_raw());
        w.u64(self.mtime);
        w.u32(self.unit.imports.len() as u32);
        for i in &self.unit.imports {
            w.str(i.unit.as_str());
            w.u128(i.pid.as_raw());
        }
        w.bytes(&self.unit.env_pickle);
        crate::ircodec::write_ir(&mut w, &self.unit.code);
        let payload = w.into_bytes();
        out.extend_from_slice(&payload);
        out.extend_from_slice(&Pid::of_bytes(&payload).as_raw().to_le_bytes());
        out
    }

    /// Deserializes a bin file.  The previous JSON container
    /// (`SMLCBIN1`) is still readable, so bodies copied forward from a
    /// version-1 archive parse fine until the archive is rewritten.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptBin`] when the magic, self-digest, or payload
    /// is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<BinFile, CoreError> {
        if let Some(payload) = bytes.strip_prefix(LEGACY_BIN_MAGIC.as_slice()) {
            return serde_json::from_slice(payload)
                .map_err(|e| CoreError::CorruptBin(e.to_string()));
        }
        let sealed = bytes
            .strip_prefix(BIN_MAGIC.as_slice())
            .ok_or_else(|| CoreError::CorruptBin("bad magic".into()))?;
        if sealed.len() < 16 {
            return Err(CoreError::CorruptBin("truncated bin file".into()));
        }
        let (payload, tail) = sealed.split_at(sealed.len() - 16);
        let digest = Pid::from_raw(u128::from_le_bytes(tail.try_into().expect("16 bytes")));
        if Pid::of_bytes(payload) != digest {
            return Err(CoreError::CorruptBin("bin self-digest mismatch".into()));
        }
        let corrupt = |e: smlsc_pickle::PickleError| CoreError::CorruptBin(e.to_string());
        let mut r = smlsc_pickle::wire::Reader::new(payload);
        let name = Symbol::intern(r.str_ref().map_err(corrupt)?);
        let source_pid = Pid::from_raw(r.u128().map_err(corrupt)?);
        let export_pid = Pid::from_raw(r.u128().map_err(corrupt)?);
        let mtime = r.u64().map_err(corrupt)?;
        let nimports = r.u32().map_err(corrupt)? as usize;
        let mut imports = Vec::with_capacity(nimports);
        for _ in 0..nimports {
            let unit = Symbol::intern(r.str_ref().map_err(corrupt)?);
            let pid = Pid::from_raw(r.u128().map_err(corrupt)?);
            imports.push(ImportEdge { unit, pid });
        }
        let env_pickle = r.bytes().map_err(corrupt)?;
        let code = crate::ircodec::read_ir(&mut r).map_err(corrupt)?;
        if !r.at_end() {
            return Err(CoreError::CorruptBin("trailing bytes in bin file".into()));
        }
        Ok(BinFile {
            unit: CompiledUnit {
                name,
                source_pid,
                imports,
                export_pid,
                env_pickle,
                code,
            },
            mtime,
        })
    }

    /// Serializes in the legacy `SMLCBIN1` JSON container.  Only for
    /// migration tests; production saves always emit the current format.
    #[doc(hidden)]
    pub fn to_legacy_v1_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.unit.env_pickle.len() + 256);
        out.extend_from_slice(LEGACY_BIN_MAGIC);
        let json = serde_json::to_vec(self).expect("bin files serialize");
        out.extend_from_slice(&json);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_file_round_trip() {
        let bin = BinFile {
            unit: CompiledUnit {
                name: Symbol::intern("a"),
                source_pid: Pid::of_bytes(b"src"),
                imports: vec![ImportEdge {
                    unit: Symbol::intern("b"),
                    pid: Pid::of_bytes(b"b-exports"),
                }],
                export_pid: Pid::of_bytes(b"a-exports"),
                env_pickle: vec![1, 2, 3],
                code: Ir::Int(7),
            },
            mtime: 42,
        };
        let bytes = bin.to_bytes();
        let back = BinFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.mtime, 42);
        assert_eq!(back.unit.name, Symbol::intern("a"));
        assert_eq!(back.unit.imports, bin.unit.imports);
        assert_eq!(back.unit.env_pickle, vec![1, 2, 3]);
        assert_eq!(back.unit.code, Ir::Int(7));

        // The legacy JSON container still parses identically.
        let legacy = bin.to_legacy_v1_bytes();
        let back = BinFile::from_bytes(&legacy).unwrap();
        assert_eq!(back.unit.name, Symbol::intern("a"));
        assert_eq!(back.unit.env_pickle, vec![1, 2, 3]);
        assert_eq!(back.unit.code, Ir::Int(7));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            BinFile::from_bytes(b"NOTABIN!{}"),
            Err(CoreError::CorruptBin(_))
        ));
    }
}
