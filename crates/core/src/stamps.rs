//! The persistent stamp cache: `(path, mtime_ns, size) → analysis`.
//!
//! The paper's IRM promises that an unchanged project costs only digest
//! checks — but even digesting requires *reading* every source.  The
//! stamp cache removes that last O(project) scan: when a file's path,
//! mtime (nanoseconds) and size all match the recorded stamp, the
//! manager reuses the recorded source pid and dependency analysis
//! without opening the file at all.
//!
//! Stamps are a *hint*, never the truth (the paper's §4 stance applied
//! to timestamps): every pid that participates in a rebuild decision was
//! originally computed from file contents, and `--paranoid` re-reads and
//! re-digests everything, bypassing the stamp cache entirely.  A
//! property test asserts stamped and paranoid runs produce identical
//! pids and identical rebuild decisions.
//!
//! The cache persists as one binary file (historically named
//! `stamps.json`, kept for compatibility; the content is the
//! `pickle::wire` little-endian format with a digest-checked payload),
//! written with the durable tmp + fsync + rename + fsync(parent)
//! idiom ([`crate::fsutil::commit_atomic`], fault point `stamp.save`)
//! so a crash mid-save can never tear it.  Warm analysis therefore does one bulk
//! parse instead of serde over thousands of entries.  Version-1 JSON
//! stamp files are still readable and are rewritten in the binary
//! format by the next save.  A missing or corrupt stamp file is *not*
//! an error — it degrades to "no hints", i.e. the cold path.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use smlsc_ids::{Pid, Symbol};
use smlsc_pickle::wire::{Reader, Writer};
use smlsc_trace::{self as trace, names};

use crate::CoreError;

/// Version of the stamp-file format; a mismatch discards the file.
const STAMP_VERSION: u32 = 2;
/// The JSON format this repo shipped first; still readable, migrated on
/// the next save.
const LEGACY_STAMP_VERSION: u32 = 1;

/// Leading magic of the binary stamp file; a `u32` version field
/// follows it inside the digest-checked payload.
const STAMP_MAGIC: &[u8; 8] = b"SMLSSTM2";

/// The dependency analysis recorded for one source: its content and
/// token digests plus the import/export lists.  Shared by [`Arc`]
/// between the stamp cache and the manager's in-memory deps cache, so
/// a warm stamp hit costs a refcount bump — never a clone of the
/// vectors (at monorepo scale those per-unit clones dominated the
/// no-op analyze phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Digest of the file contents at stamp time.
    pub source_pid: Pid,
    /// Digest of the token stream (comment/whitespace-insensitive).
    pub deps_pid: Pid,
    /// Imported module names, sorted.
    pub imports: Vec<Symbol>,
    /// Exported module names.
    pub exports: Vec<Symbol>,
}

/// One recorded analysis for a source path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StampEntry {
    /// The unit the path analyzed as (a rename never matches a stale
    /// stamp even if mtime and size coincide).
    pub unit: Symbol,
    /// File modification time, nanoseconds since the epoch.
    pub mtime_ns: u64,
    /// File size in bytes.
    pub size: u64,
    /// The recorded analysis, shareable with the deps cache.
    pub analysis: Arc<Analysis>,
}

/// The legacy version-1 JSON shape of a stamp entry (flat fields; the
/// Arc-shared [`Analysis`] split postdates the JSON format).
#[derive(Serialize, Deserialize)]
struct LegacyStampEntry {
    unit: Symbol,
    mtime_ns: u64,
    size: u64,
    source_pid: Pid,
    deps_pid: Pid,
    imports: Vec<Symbol>,
    exports: Vec<Symbol>,
}

impl From<LegacyStampEntry> for StampEntry {
    fn from(e: LegacyStampEntry) -> StampEntry {
        StampEntry {
            unit: e.unit,
            mtime_ns: e.mtime_ns,
            size: e.size,
            analysis: Arc::new(Analysis {
                source_pid: e.source_pid,
                deps_pid: e.deps_pid,
                imports: e.imports,
                exports: e.exports,
            }),
        }
    }
}

impl From<&StampEntry> for LegacyStampEntry {
    fn from(e: &StampEntry) -> LegacyStampEntry {
        LegacyStampEntry {
            unit: e.unit,
            mtime_ns: e.mtime_ns,
            size: e.size,
            source_pid: e.analysis.source_pid,
            deps_pid: e.analysis.deps_pid,
            imports: e.analysis.imports.clone(),
            exports: e.analysis.exports.clone(),
        }
    }
}

/// One `(path, entry)` pair in the on-disk file (the vendored serde has
/// no map support, so the file is a vector of records).
#[derive(Serialize, Deserialize)]
struct StampRecord {
    path: String,
    entry: LegacyStampEntry,
}

#[derive(Serialize, Deserialize)]
struct StampFile {
    version: u32,
    entries: Vec<StampRecord>,
}

/// The persistent stamp cache.  See the module docs.
#[derive(Debug, Default)]
pub struct StampCache {
    entries: HashMap<String, StampEntry>,
    dirty: bool,
}

impl StampCache {
    /// An empty cache.
    pub fn new() -> StampCache {
        StampCache::default()
    }

    /// Loads a stamp file.  Missing, unreadable, corrupt, or
    /// version-mismatched files all yield an *empty* cache — stamps are
    /// hints, so degradation is silent and safe (every miss just reads
    /// and digests the source the cold way).  A legacy JSON stamp file
    /// loads fine but comes back *dirty*, so the next save rewrites it
    /// in the binary format.
    ///
    /// Entries whose recorded `mtime_ns` is at or after the stamp file's
    /// own mtime (the last save instant) are *racy* and dropped: a file
    /// edited within the same mtime tick and to the same byte size as
    /// its stamp would otherwise be served as a hit with stale analysis.
    /// Dropping the entry forces one re-digest, whose `record` marks the
    /// cache dirty so the following save moves the trust boundary past
    /// the file's mtime and restores hits.
    pub fn load(path: &Path) -> StampCache {
        let Ok(bytes) = std::fs::read(path) else {
            return StampCache::default();
        };
        let saved_at_ns = std::fs::metadata(path)
            .ok()
            .and_then(|m| m.modified().ok())
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        let mut cache = if let Some(payload) = bytes.strip_prefix(STAMP_MAGIC.as_slice()) {
            Self::parse_binary(payload).unwrap_or_default()
        } else {
            // Legacy JSON: readable, but schedule a rewrite.
            match serde_json::from_slice::<StampFile>(&bytes) {
                Ok(f) if f.version == LEGACY_STAMP_VERSION => StampCache {
                    entries: f
                        .entries
                        .into_iter()
                        .map(|r| (r.path, r.entry.into()))
                        .collect(),
                    dirty: true,
                },
                _ => StampCache::default(),
            }
        };
        if let Some(cutoff_ns) = saved_at_ns {
            cache.drop_racy_entries(cutoff_ns);
        }
        cache
    }

    /// Classifies a stamp file on disk without loading it: `None` when
    /// the file is absent, `Some(Ok(n))` for a well-formed file with
    /// `n` entries (binary or legacy JSON), `Some(Err(reason))` when
    /// the bytes are corrupt.  [`Self::load`] silently degrades corrupt
    /// files to an empty cache; `smlsc doctor` uses this to tell the
    /// difference and report what `load` would quietly discard.
    pub fn audit(path: &Path) -> Option<Result<usize, String>> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => return Some(Err(format!("unreadable: {e}"))),
        };
        if let Some(payload) = bytes.strip_prefix(STAMP_MAGIC.as_slice()) {
            match Self::parse_binary(payload) {
                Some(cache) => Some(Ok(cache.entries.len())),
                None => Some(Err("binary stamp payload fails digest or decode".into())),
            }
        } else {
            match serde_json::from_slice::<StampFile>(&bytes) {
                Ok(f) if f.version == LEGACY_STAMP_VERSION => Some(Ok(f.entries.len())),
                _ => Some(Err("neither binary magic nor legacy JSON".into())),
            }
        }
    }

    /// Drops entries stamped at or after `cutoff_ns` (see [`Self::load`]);
    /// dropping any marks the cache dirty so re-digested replacements are
    /// persisted even when their analysis comes out byte-identical.
    fn drop_racy_entries(&mut self, cutoff_ns: u64) {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.mtime_ns < cutoff_ns);
        if self.entries.len() != before {
            self.dirty = true;
        }
    }

    /// Parses the digest-checked binary payload (everything after the
    /// magic).  `None` on any corruption.
    fn parse_binary(payload: &[u8]) -> Option<StampCache> {
        if payload.len() < 16 {
            return None;
        }
        let (body, tail) = payload.split_at(payload.len() - 16);
        let digest = Pid::from_raw(u128::from_le_bytes(tail.try_into().ok()?));
        if Pid::of_bytes(body) != digest {
            return None;
        }
        let mut r = Reader::new(body);
        if r.u32().ok()? != STAMP_VERSION {
            return None;
        }
        let count = r.u32().ok()? as usize;
        let mut entries = HashMap::with_capacity(count);
        for _ in 0..count {
            let path = r.str().ok()?;
            let unit = Symbol::intern(r.str_ref().ok()?);
            let mtime_ns = r.u64().ok()?;
            let size = r.u64().ok()?;
            let source_pid = Pid::from_raw(r.u128().ok()?);
            let deps_pid = Pid::from_raw(r.u128().ok()?);
            let nimports = r.u32().ok()? as usize;
            let mut imports = Vec::with_capacity(nimports);
            for _ in 0..nimports {
                imports.push(Symbol::intern(r.str_ref().ok()?));
            }
            let nexports = r.u32().ok()? as usize;
            let mut exports = Vec::with_capacity(nexports);
            for _ in 0..nexports {
                exports.push(Symbol::intern(r.str_ref().ok()?));
            }
            entries.insert(
                path,
                StampEntry {
                    unit,
                    mtime_ns,
                    size,
                    analysis: Arc::new(Analysis {
                        source_pid,
                        deps_pid,
                        imports,
                        exports,
                    }),
                },
            );
        }
        if !r.at_end() {
            return None;
        }
        Some(StampCache {
            entries,
            dirty: false,
        })
    }

    /// Persists the cache atomically (tmp + fsync + rename).  A clean
    /// cache (nothing recorded since load) writes nothing.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    pub fn save(&mut self, path: &Path) -> Result<(), CoreError> {
        if !self.dirty && path.is_file() {
            trace::counter(names::STAMP_SAVES_SKIPPED, 1);
            return Ok(());
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
        }
        // Sort records so repeated saves of the same cache are
        // byte-identical (diff-friendly, deterministic tests).
        let mut paths: Vec<&String> = self.entries.keys().collect();
        paths.sort();
        let mut w = Writer::new();
        w.u32(STAMP_VERSION);
        w.u32(paths.len() as u32);
        for p in paths {
            let e = &self.entries[p];
            w.str(p);
            w.str(e.unit.as_str());
            w.u64(e.mtime_ns);
            w.u64(e.size);
            w.u128(e.analysis.source_pid.as_raw());
            w.u128(e.analysis.deps_pid.as_raw());
            w.u32(e.analysis.imports.len() as u32);
            for i in &e.analysis.imports {
                w.str(i.as_str());
            }
            w.u32(e.analysis.exports.len() as u32);
            for x in &e.analysis.exports {
                w.str(x.as_str());
            }
        }
        let body = w.into_bytes();
        let mut out = Vec::with_capacity(STAMP_MAGIC.len() + body.len() + 16);
        out.extend_from_slice(STAMP_MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&Pid::of_bytes(&body).as_raw().to_le_bytes());
        crate::fsutil::commit_atomic(path, &out, smlsc_faults::points::STAMP_SAVE)
            .map_err(|e| CoreError::Io(format!("{}: {e}", path.display())))?;
        self.dirty = false;
        Ok(())
    }

    /// The recorded entry for `path`, but only if the stamp still
    /// matches: same unit, same mtime (nanoseconds), same size.
    pub fn lookup(
        &self,
        path: &str,
        unit: Symbol,
        mtime_ns: u64,
        size: u64,
    ) -> Option<&StampEntry> {
        self.entries
            .get(path)
            .filter(|e| e.unit == unit && e.mtime_ns == mtime_ns && e.size == size)
    }

    /// Records (or refreshes) the entry for `path`.  Recording an
    /// identical entry does not mark the cache dirty, so a fully warm
    /// build saves nothing.
    pub fn record(&mut self, path: String, entry: StampEntry) {
        if self.entries.get(&path) == Some(&entry) {
            return;
        }
        self.entries.insert(path, entry);
        self.dirty = true;
    }

    /// Writes the legacy version-1 JSON format.  Only for migration
    /// tests; production saves always emit the binary format.
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    #[doc(hidden)]
    pub fn save_legacy_v1_json(&self, path: &Path) -> Result<(), CoreError> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| CoreError::Io(format!("{}: {e}", dir.display())))?;
        }
        let mut records: Vec<StampRecord> = self
            .entries
            .iter()
            .map(|(path, entry)| StampRecord {
                path: path.clone(),
                entry: entry.into(),
            })
            .collect();
        records.sort_by(|a, b| a.path.cmp(&b.path));
        let file = StampFile {
            version: LEGACY_STAMP_VERSION,
            entries: records,
        };
        let json = serde_json::to_vec(&file).expect("stamp entries serialize");
        std::fs::write(path, &json).map_err(|e| CoreError::Io(format!("{}: {e}", path.display())))
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(unit: &str, mtime: u64, size: u64) -> StampEntry {
        StampEntry {
            unit: Symbol::intern(unit),
            mtime_ns: mtime,
            size,
            analysis: Arc::new(Analysis {
                source_pid: Pid::of_bytes(b"src"),
                deps_pid: Pid::of_bytes(b"toks"),
                imports: vec![Symbol::intern("A")],
                exports: vec![Symbol::intern("B")],
            }),
        }
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "smlsc-stamps-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn round_trip() {
        let path = tmp_path("roundtrip").join("stamps.json");
        let mut c = StampCache::new();
        c.record("a.sml".into(), entry("a", 10, 20));
        c.save(&path).unwrap();
        let back = StampCache::load(&path);
        assert_eq!(back.len(), 1);
        assert!(back.lookup("a.sml", Symbol::intern("a"), 10, 20).is_some());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn stale_stamp_does_not_match() {
        let mut c = StampCache::new();
        c.record("a.sml".into(), entry("a", 10, 20));
        let a = Symbol::intern("a");
        assert!(c.lookup("a.sml", a, 11, 20).is_none(), "mtime moved");
        assert!(c.lookup("a.sml", a, 10, 21).is_none(), "size moved");
        assert!(
            c.lookup("a.sml", Symbol::intern("b"), 10, 20).is_none(),
            "renamed unit must not reuse the old path's analysis"
        );
        assert!(c.lookup("b.sml", a, 10, 20).is_none(), "other path");
    }

    #[test]
    fn racy_entries_are_dropped_on_load_and_heal_on_save() {
        let dir = tmp_path("racy");
        let path = dir.join("stamps.json");
        let now_ns = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos() as u64;
        let mut c = StampCache::new();
        c.record("old.sml".into(), entry("old", 10, 20));
        // A stamp at (or after) the save instant is indistinguishable
        // from a same-tick, same-size edit that landed just after the
        // digest: it must not be served as a hit.
        c.record(
            "racy.sml".into(),
            entry("racy", now_ns + 1_000_000_000_000, 20),
        );
        c.save(&path).unwrap();

        let mut back = StampCache::load(&path);
        assert_eq!(back.len(), 1, "racy entry dropped, settled entry kept");
        assert!(back
            .lookup(
                "racy.sml",
                Symbol::intern("racy"),
                now_ns + 1_000_000_000_000,
                20
            )
            .is_none());
        assert!(back
            .lookup("old.sml", Symbol::intern("old"), 10, 20)
            .is_some());

        // Re-digesting yields the same analysis; recording it must still
        // dirty the cache so the save advances the trust boundary.
        back.record("racy.sml".into(), entry("racy", 30, 20));
        back.save(&path).unwrap();
        let healed = StampCache::load(&path);
        assert_eq!(healed.len(), 2, "healed file trusts the re-digested entry");
        assert!(healed
            .lookup("racy.sml", Symbol::intern("racy"), 30, 20)
            .is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_corrupt_files_degrade_to_empty() {
        assert!(StampCache::load(Path::new("/nonexistent/stamps.json")).is_empty());
        let path = tmp_path("corrupt");
        std::fs::create_dir_all(&path).unwrap();
        let f = path.join("stamps.json");
        std::fs::write(&f, b"{ not json").unwrap();
        assert!(StampCache::load(&f).is_empty());
        // A torn binary file (flipped payload byte) fails the digest
        // check and degrades the same way.
        let mut c = StampCache::new();
        c.record("a.sml".into(), entry("a", 10, 20));
        c.save(&f).unwrap();
        let mut bytes = std::fs::read(&f).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&f, &bytes).unwrap();
        assert!(StampCache::load(&f).is_empty());
        std::fs::remove_dir_all(&path).ok();
    }

    #[test]
    fn saved_file_is_binary_not_json() {
        let dir = tmp_path("binfmt");
        let path = dir.join("stamps.json");
        let mut c = StampCache::new();
        c.record("a.sml".into(), entry("a", 10, 20));
        c.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(STAMP_MAGIC));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_json_loads_and_migrates_on_save() {
        let dir = tmp_path("legacy");
        let path = dir.join("stamps.json");
        let mut c = StampCache::new();
        c.record("a.sml".into(), entry("a", 10, 20));
        c.record("b.sml".into(), entry("b", 30, 40));
        c.save_legacy_v1_json(&path).unwrap();
        assert!(std::fs::read(&path).unwrap().starts_with(b"{"));

        // Loads with full fidelity...
        let mut back = StampCache::load(&path);
        assert_eq!(back.len(), 2);
        let e = back.lookup("a.sml", Symbol::intern("a"), 10, 20).unwrap();
        assert_eq!(e, &entry("a", 10, 20));
        // ...and comes back dirty, so the very next save (with nothing
        // newly recorded) rewrites the file in the binary format.
        back.save(&path).unwrap();
        assert!(std::fs::read(&path).unwrap().starts_with(STAMP_MAGIC));
        let again = StampCache::load(&path);
        assert_eq!(again.len(), 2);
        assert!(again.lookup("b.sml", Symbol::intern("b"), 30, 40).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_save_is_a_no_op() {
        let dir = tmp_path("clean");
        let path = dir.join("stamps.json");
        let mut c = StampCache::new();
        c.record("a.sml".into(), entry("a", 1, 2));
        c.save(&path).unwrap();
        let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();
        // Re-recording the identical entry keeps the cache clean.
        c.record("a.sml".into(), entry("a", 1, 2));
        c.save(&path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().modified().unwrap(), mtime);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_temp_files_survive_a_save() {
        let dir = tmp_path("tmpfiles");
        let path = dir.join("stamps.json");
        let mut c = StampCache::new();
        c.record("a.sml".into(), entry("a", 1, 2));
        c.save(&path).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["stamps.json"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
