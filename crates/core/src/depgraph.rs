//! The persistent import-DAG sidecar, `deps.pack`.
//!
//! A warm build needs the resolved dependency graph — the topological
//! order plus each unit's deduplicated import list — before it can
//! schedule anything.  Deriving it costs a full export-map construction,
//! an import-name resolution per unit, and a DFS over the whole
//! project: all linear-or-worse work that a no-op build repeats every
//! cold process even though nothing changed.
//!
//! [`DepGraph`] makes that derivation persistent.  After a build the
//! graph is serialized next to `bins.pack` (same digest-checked-payload
//! discipline, same tmp+fsync+rename publication); the next cold
//! process rehydrates it with one sequential read and *no* per-unit
//! name resolution.  Staleness is decided by the existing pid ladder:
//! the sidecar records each unit's `deps_pid` (token-stream digest),
//! and the graph is current iff every unit's recorded pid matches its
//! fresh analysis — imports and exports are functions of the token
//! stream, so equal pids imply an identical graph.  Any mismatch,
//! missing file, or corruption silently falls back to re-deriving from
//! analyses (`deps.pack_misses` counts it); a torn sidecar can cost
//! time, never correctness.
//!
//! # On-disk layout
//!
//! ```text
//! magic "SMLSDEP1" (8 bytes)
//! payload:
//!   u32 format version (1)
//!   u32 unit count
//!   per unit, in topological order:
//!     str  unit name
//!     u128 deps pid (token digest at save time)
//!     u32  import count, then that many u32 topological slot indices
//! u128 digest of payload (little-endian)
//! ```
//!
//! Import edges are stored as indices into the record table itself, so
//! loading performs zero hash lookups per edge; the topological
//! invariant (every import index precedes its importer) is validated on
//! load and doubles as a structural corruption check.

use std::collections::HashMap;
use std::path::Path;

use smlsc_faults::points;
use smlsc_ids::{Pid, Symbol};
use smlsc_pickle::wire::{Reader, Writer};
use smlsc_trace as trace;

use crate::fsutil;
use crate::CoreError;

/// File name of the import-DAG sidecar, next to `bins.pack`.
pub const DEPS_FILE: &str = "deps.pack";

/// Magic prefix of the sidecar file.
pub const DEPS_MAGIC: &[u8; 8] = b"SMLSDEP1";

/// Bumped whenever the payload layout changes; older versions are
/// treated as absent (rebuilt from analyses), never migrated.
pub const DEPS_VERSION: u32 = 1;

/// The resolved import DAG: topological order, per-unit deduplicated
/// import lists (as names and as topological indices), and the
/// `deps_pid` each unit had when the graph was derived.
#[derive(Debug, Clone)]
pub struct DepGraph {
    order: Vec<Symbol>,
    deps_pids: Vec<Pid>,
    import_units: Vec<Vec<Symbol>>,
    import_idx: Vec<Vec<usize>>,
    index_of: HashMap<Symbol, usize>,
}

impl DepGraph {
    /// Assembles a graph from a topological order, per-slot deps pids,
    /// and per-slot import indices (each index must point to an earlier
    /// slot).  The name-level import lists and the reverse index are
    /// derived here so every construction path agrees on them.
    pub fn new(order: Vec<Symbol>, deps_pids: Vec<Pid>, import_idx: Vec<Vec<usize>>) -> DepGraph {
        debug_assert_eq!(order.len(), deps_pids.len());
        debug_assert_eq!(order.len(), import_idx.len());
        let import_units = import_idx
            .iter()
            .map(|deps| deps.iter().map(|&j| order[j]).collect())
            .collect();
        let index_of = order.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        DepGraph {
            order,
            deps_pids,
            import_units,
            import_idx,
            index_of,
        }
    }

    /// Number of units in the graph.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the graph has no units.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The topological order.
    pub fn order(&self) -> &[Symbol] {
        &self.order
    }

    /// The topological slot of `unit`, if it is in the graph.
    pub fn index_of(&self, unit: Symbol) -> Option<usize> {
        self.index_of.get(&unit).copied()
    }

    /// The `deps_pid` recorded for topological slot `i`.
    pub fn deps_pid(&self, i: usize) -> Pid {
        self.deps_pids[i]
    }

    /// The deduplicated import units of topological slot `i`.
    pub fn import_units(&self, i: usize) -> &[Symbol] {
        &self.import_units[i]
    }

    /// The imports of topological slot `i` as topological slots.
    pub fn import_idx(&self, i: usize) -> &[usize] {
        &self.import_idx[i]
    }

    /// Total number of import edges.
    pub fn edge_count(&self) -> usize {
        self.import_idx.iter().map(Vec::len).sum()
    }

    /// Serializes the graph and publishes it atomically at `path`
    /// (tmp + fsync + rename, fault point `deps.save`).
    ///
    /// # Errors
    ///
    /// [`CoreError::Io`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        let mut w = Writer::new();
        w.u32(DEPS_VERSION);
        w.u32(self.order.len() as u32);
        for i in 0..self.order.len() {
            w.str(self.order[i].as_str());
            w.u128(self.deps_pids[i].as_raw());
            w.u32(self.import_idx[i].len() as u32);
            for &j in &self.import_idx[i] {
                w.u32(j as u32);
            }
        }
        let payload = w.into_bytes();
        let mut bytes = Vec::with_capacity(DEPS_MAGIC.len() + payload.len() + 16);
        bytes.extend_from_slice(DEPS_MAGIC);
        let digest = Pid::of_bytes(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&digest.as_raw().to_le_bytes());
        fsutil::commit_atomic(path, &bytes, points::DEPS_SAVE)
            .map_err(|e| CoreError::Io(format!("{}: {e}", path.display())))
    }

    /// Loads a sidecar from `path`.  Any problem — missing file, bad
    /// magic, wrong version, digest mismatch, structural corruption —
    /// returns `None` so the caller re-derives the graph from analyses.
    pub fn load(path: &Path) -> Option<DepGraph> {
        let bytes = std::fs::read(path).ok()?;
        match DepGraph::parse(&bytes) {
            Ok(g) => Some(g),
            Err(detail) => {
                trace::event("irm.deps_corrupt")
                    .field("path", path.display())
                    .field("error", detail);
                None
            }
        }
    }

    /// Doctor-facing audit of a sidecar file: `Ok(units)` when it
    /// parses clean, `Err(detail)` when it is corrupt.
    ///
    /// # Errors
    ///
    /// A human-readable description of the corruption.
    pub fn audit(path: &Path) -> Result<usize, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
        DepGraph::parse(&bytes).map(|g| g.len())
    }

    fn parse(bytes: &[u8]) -> Result<DepGraph, String> {
        let body = bytes
            .strip_prefix(DEPS_MAGIC.as_slice())
            .ok_or("bad magic")?;
        if body.len() < 16 {
            return Err("truncated before digest".into());
        }
        let (payload, tail) = body.split_at(body.len() - 16);
        let digest = Pid::from_raw(u128::from_le_bytes(tail.try_into().expect("16 bytes")));
        if Pid::of_bytes(payload) != digest {
            return Err("payload fails digest check".into());
        }
        let mut r = Reader::new(payload);
        let bad = |e| format!("payload decode: {e}");
        let version = r.u32().map_err(bad)?;
        if version != DEPS_VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let n = r.u32().map_err(bad)? as usize;
        // The digest already vouches for the bytes; these bounds guard
        // against a *well-digested* file written by a buggy producer.
        if n > payload.len() {
            return Err(format!("implausible unit count {n}"));
        }
        let mut order = Vec::with_capacity(n);
        let mut deps_pids = Vec::with_capacity(n);
        let mut import_idx = Vec::with_capacity(n);
        for i in 0..n {
            order.push(Symbol::intern(r.str_ref().map_err(bad)?));
            deps_pids.push(Pid::from_raw(r.u128().map_err(bad)?));
            let m = r.u32().map_err(bad)? as usize;
            if m > payload.len() {
                return Err(format!("implausible import count {m}"));
            }
            let mut deps = Vec::with_capacity(m);
            for _ in 0..m {
                let j = r.u32().map_err(bad)? as usize;
                if j >= i {
                    return Err(format!("import slot {j} does not precede unit slot {i}"));
                }
                deps.push(j);
            }
            import_idx.push(deps);
        }
        if !r.at_end() {
            return Err("trailing bytes after last record".into());
        }
        let g = DepGraph::new(order, deps_pids, import_idx);
        if g.index_of.len() != g.order.len() {
            return Err("duplicate unit names".into());
        }
        Ok(g)
    }
}

/// Loads the sidecar under `dir` if present.  Hit/miss accounting
/// happens at graph-validation time (`deps.pack_hits`/`_misses`), not
/// here — a sidecar that loads but fails its pid check is still a miss.
pub(crate) fn load_sidecar(dir: &Path) -> Option<DepGraph> {
    let path = dir.join(DEPS_FILE);
    if !path.is_file() {
        return None;
    }
    DepGraph::load(&path)
}

/// Writes the sidecar under `dir` (fault injection happens inside
/// [`fsutil::commit_atomic`] at the `deps.save` point).
pub(crate) fn save_sidecar(graph: &DepGraph, dir: &Path) -> Result<(), CoreError> {
    graph.save(&dir.join(DEPS_FILE))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "smlsc-depgraph-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> DepGraph {
        let a = Symbol::intern("A");
        let b = Symbol::intern("B");
        let c = Symbol::intern("C");
        DepGraph::new(
            vec![a, b, c],
            vec![
                Pid::of_bytes(b"a"),
                Pid::of_bytes(b"b"),
                Pid::of_bytes(b"c"),
            ],
            vec![vec![], vec![0], vec![0, 1]],
        )
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = tmpdir("roundtrip");
        let path = dir.join(DEPS_FILE);
        let g = sample();
        g.save(&path).unwrap();
        let back = DepGraph::load(&path).expect("clean sidecar loads");
        assert_eq!(back.order(), g.order());
        assert_eq!(back.edge_count(), 3);
        assert_eq!(back.import_units(2), &[g.order()[0], g.order()[1]]);
        assert_eq!(back.deps_pid(1), g.deps_pid(1));
        assert_eq!(back.index_of(Symbol::intern("C")), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_reads_as_absent() {
        let dir = tmpdir("corrupt");
        let path = dir.join(DEPS_FILE);
        sample().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(DepGraph::load(&path).is_none(), "flipped byte fails digest");
        assert!(DepGraph::audit(&path).is_err());

        // A truncated (torn) file is equally absent.
        let full = sample();
        full.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(DepGraph::load(&path).is_none(), "torn prefix fails digest");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn forward_edges_are_structural_corruption() {
        // A digest-valid payload whose edges violate the topological
        // invariant must not load: rebuild-from-analyses is the only
        // safe answer.
        let dir = tmpdir("forward");
        let path = dir.join(DEPS_FILE);
        let a = Symbol::intern("A");
        let b = Symbol::intern("B");
        let bogus = DepGraph {
            order: vec![a, b],
            deps_pids: vec![Pid::of_bytes(b"a"), Pid::of_bytes(b"b")],
            import_units: vec![vec![b], vec![]],
            import_idx: vec![vec![1], vec![]],
            index_of: [(a, 0), (b, 1)].into_iter().collect(),
        };
        bogus.save(&path).unwrap();
        assert!(DepGraph::load(&path).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let dir = tmpdir("empty");
        let path = dir.join(DEPS_FILE);
        let g = DepGraph::new(vec![], vec![], vec![]);
        g.save(&path).unwrap();
        let back = DepGraph::load(&path).expect("empty sidecar is valid");
        assert!(back.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
