//! Groups and libraries (§9).
//!
//! The IRM organizes sources into *groups*: a group names its source
//! files and the other groups (libraries) it uses.  A library may filter
//! its interface — only listed top-level names are visible to client
//! groups (internal helpers stay private even though they are ordinary
//! compilation units).  Dependency analysis then enforces visibility:
//!
//! * a unit may use names defined inside its own group;
//! * a unit may use *exported* names of groups its group `uses`;
//! * anything else — an unexported library internal, or a name from a
//!   group not listed in `uses` — is an error naming the offending group.
//!
//! Validation happens before compilation; a validated grouped project
//! lowers to a flat [`Project`] and builds with the ordinary
//! [`Irm`](crate::irm::Irm)
//! (cutoff and linkage behave identically — grouping is a namespace
//! discipline, not a compilation mode).

use std::collections::HashMap;

use smlsc_ids::Symbol;

use crate::compile::analyze_source;
use crate::irm::Project;
use crate::CoreError;

/// One group of source files.
#[derive(Debug, Clone)]
pub struct Group {
    /// The group's name.
    pub name: Symbol,
    /// Member files: `(unit name, source text)`.
    pub files: Vec<(Symbol, String)>,
    /// Groups whose exports are visible to this group's members.
    pub uses: Vec<Symbol>,
    /// Exported top-level names (`None` = everything is exported).
    pub exports: Option<Vec<Symbol>>,
}

impl Group {
    /// A group exporting everything.
    pub fn new(name: &str) -> Group {
        Group {
            name: Symbol::intern(name),
            files: Vec::new(),
            uses: Vec::new(),
            exports: None,
        }
    }

    /// Adds a source file.
    pub fn file(mut self, unit: &str, text: impl Into<String>) -> Group {
        self.files.push((Symbol::intern(unit), text.into()));
        self
    }

    /// Declares a used library group.
    pub fn uses(mut self, group: &str) -> Group {
        self.uses.push(Symbol::intern(group));
        self
    }

    /// Restricts the exported names (turns the group into a filtered
    /// library).
    pub fn exporting(mut self, names: &[&str]) -> Group {
        self.exports = Some(names.iter().map(|n| Symbol::intern(n)).collect());
        self
    }
}

/// A project organized into groups.
#[derive(Debug, Clone, Default)]
pub struct GroupedProject {
    groups: Vec<Group>,
}

impl GroupedProject {
    /// An empty grouped project.
    pub fn new() -> GroupedProject {
        GroupedProject::default()
    }

    /// Adds a group.
    pub fn group(mut self, g: Group) -> GroupedProject {
        self.groups.push(g);
        self
    }

    /// The groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Validates visibility and lowers to a flat [`Project`] for the IRM.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownUnit`] for a `uses` entry naming no group;
    /// * [`CoreError::DuplicateExport`] for a top-level name defined in
    ///   two units (anywhere — unit names share one global space);
    /// * [`CoreError::GroupVisibility`] when a unit references a name it
    ///   cannot see.
    pub fn lower(&self) -> Result<Project, CoreError> {
        // Group membership of every defined top-level name.
        let mut definer: HashMap<Symbol, (Symbol, Symbol)> = HashMap::new(); // name -> (group, unit)
        let mut analyses: HashMap<Symbol, (Symbol, Vec<Symbol>)> = HashMap::new(); // unit -> (group, imports)
        let group_names: Vec<Symbol> = self.groups.iter().map(|g| g.name).collect();
        for g in &self.groups {
            for u in &g.uses {
                if !group_names.contains(u) {
                    return Err(CoreError::UnknownUnit(*u));
                }
            }
            for (unit, text) in &g.files {
                let a = analyze_source(*unit, text)?;
                for name in &a.exports {
                    if let Some((g2, u2)) = definer.insert(*name, (g.name, *unit)) {
                        if u2 != *unit {
                            return Err(CoreError::DuplicateExport {
                                name: *name,
                                units: vec![u2, *unit],
                            });
                        }
                        let _ = g2;
                    }
                }
                analyses.insert(*unit, (g.name, a.imports));
            }
        }
        // Visibility check.
        let exported: HashMap<Symbol, Option<&Vec<Symbol>>> = self
            .groups
            .iter()
            .map(|g| (g.name, g.exports.as_ref()))
            .collect();
        for g in &self.groups {
            for (unit, _) in &g.files {
                let (_, imports) = &analyses[unit];
                for import in imports {
                    let Some((def_group, _)) = definer.get(import) else {
                        return Err(CoreError::UnresolvedImport {
                            unit: *unit,
                            name: *import,
                        });
                    };
                    if *def_group == g.name {
                        continue; // same group: always visible
                    }
                    if !g.uses.contains(def_group) {
                        return Err(CoreError::GroupVisibility {
                            unit: *unit,
                            name: *import,
                            group: *def_group,
                            reason: format!(
                                "group `{}` does not list `{def_group}` in its uses",
                                g.name
                            ),
                        });
                    }
                    if let Some(Some(filter)) = exported.get(def_group) {
                        if !filter.contains(import) {
                            return Err(CoreError::GroupVisibility {
                                unit: *unit,
                                name: *import,
                                group: *def_group,
                                reason: format!("library `{def_group}` does not export `{import}`"),
                            });
                        }
                    }
                }
            }
        }
        // Lower.
        let mut p = Project::new();
        for g in &self.groups {
            for (unit, text) in &g.files {
                p.add(unit.as_str(), text.clone());
            }
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irm::{Irm, Strategy};

    fn lib() -> Group {
        Group::new("collections")
            .file(
                "listops",
                "structure ListOps = struct
                   fun len [] = 0 | len (_ :: xs) = 1 + len xs
                 end",
            )
            .file(
                "internal",
                "structure Internal = struct val debugFlag = 1 end",
            )
            .exporting(&["ListOps"])
    }

    #[test]
    fn visible_imports_build_and_run() {
        let gp =
            GroupedProject::new()
                .group(lib())
                .group(Group::new("app").uses("collections").file(
                    "main",
                    "structure Main = struct val n = ListOps.len [1, 2, 3] end",
                ));
        let p = gp.lower().expect("validates");
        let mut irm = Irm::new(Strategy::Cutoff);
        let (_, env) = irm.execute(&p).expect("builds");
        assert_eq!(env.len(), 3);
    }

    #[test]
    fn unexported_library_internals_are_hidden() {
        let gp =
            GroupedProject::new()
                .group(lib())
                .group(Group::new("app").uses("collections").file(
                    "main",
                    "structure Main = struct val n = Internal.debugFlag end",
                ));
        let err = gp.lower().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("does not export"), "{msg}");
    }

    #[test]
    fn unlisted_groups_are_invisible() {
        let gp = GroupedProject::new().group(lib()).group(
            Group::new("app") // no `uses`
                .file("main", "structure Main = struct val n = ListOps.len [] end"),
        );
        let err = gp.lower().unwrap_err();
        assert!(err.to_string().contains("does not list"), "{err}");
    }

    #[test]
    fn same_group_sees_internals() {
        let gp = GroupedProject::new().group(lib().file(
            "more",
            "structure More = struct val d = Internal.debugFlag end",
        ));
        assert!(gp.lower().is_ok(), "own group sees unexported units");
    }

    #[test]
    fn unknown_used_group_is_reported() {
        let gp = GroupedProject::new().group(
            Group::new("app")
                .uses("nonexistent")
                .file("main", "structure Main = struct val x = 1 end"),
        );
        assert!(gp.lower().is_err());
    }

    #[test]
    fn duplicate_names_across_groups_are_rejected() {
        let gp = GroupedProject::new()
            .group(Group::new("g1").file("a", "structure X = struct val x = 1 end"))
            .group(Group::new("g2").file("b", "structure X = struct val x = 2 end"));
        assert!(matches!(gp.lower(), Err(CoreError::DuplicateExport { .. })));
    }
}
