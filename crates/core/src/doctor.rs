//! `smlsc doctor`: audit and repair every kind of durable build state.
//!
//! A build that is killed at an arbitrary instant — power loss, OOM
//! kill, `kill -9` — may leave half-finished state behind: staging-file
//! litter from interrupted atomic commits, a torn tail on the
//! append-only ledger, a truncated pack, partially published store
//! objects, or a daemon lockfile whose owner is dead.  Every reader in
//! smlsc already *tolerates* such debris (loads degrade to empty,
//! torn tails are healed on the next append, bad pack bodies force a
//! recompile), but tolerance is silent.  The doctor makes the debris
//! visible and, with `--fix`, removes it:
//!
//! | state               | audit                                   | repair                         |
//! |---------------------|-----------------------------------------|--------------------------------|
//! | `stamps.json`       | magic + digest + decode                 | delete (stamps are hints)      |
//! | `bins.pack`         | index decode, per-body digest           | rewrite keeping valid bodies   |
//! | `deps.pack`         | magic + digest + structural decode      | delete (re-derived next build) |
//! | `builds.jsonl`      | [`Ledger::audit`]                       | [`Ledger::compact_valid`]      |
//! | CAS store           | [`Store::verify`] + `tmp/` litter scan  | quarantine + sweep litter      |
//! | daemon sock + lock  | lockfile pid liveness                   | remove stale sock + lock       |
//! | bin-dir tmp litter  | [`fsutil::is_tmp_litter`] names         | delete                         |
//!
//! The store audit *is* [`Store::verify`] — the same implementation
//! behind `smlsc cache verify` — so the two commands can never
//! disagree about what "corrupt" means.  Note that `verify` always
//! quarantines what it finds (quarantining is non-destructive; `gc`
//! purges the quarantine later), so store findings are reported as
//! repaired even without `--fix`.
//!
//! The report is machine-readable JSON; [`DoctorReport::exit_code`]
//! maps the verdict onto the CLI's exit-code contract: `0` healthy or
//! fully repaired, `4` issues found without `--fix`, `3` a repair
//! failed.

use std::path::{Path, PathBuf};
use std::time::Duration;

use serde::Serialize;

use crate::ledger::Ledger;
use crate::pack::{PackReader, PackWriter, PACK_FILE};
use crate::stamps::StampCache;
use crate::{fsutil, CoreError};
use smlsc_store::Store;

/// Mirror of the daemon crate's socket filename (`smlsc-daemon`
/// depends on this crate, so the constant cannot be imported).
const DAEMON_SOCKET_FILE: &str = "daemon.sock";
/// Mirror of the daemon crate's lockfile name.
const DAEMON_LOCK_FILE: &str = "daemon.lock";

/// What `smlsc doctor` should look at and whether it may write.
#[derive(Debug, Clone)]
pub struct DoctorOptions {
    /// The project's bin directory (stamps, pack, ledger, daemon files).
    pub bin_dir: PathBuf,
    /// The CAS store root, when the project uses one.
    pub store: Option<PathBuf>,
    /// Repair what the audit finds instead of only reporting it.
    pub fix: bool,
}

/// One problem the audit found, and what happened to it.
#[derive(Debug, Clone, Serialize)]
pub struct DoctorFinding {
    /// Which state kind: `stamps`, `pack`, `ledger`, `store`,
    /// `daemon`, or `litter`.
    pub state: String,
    /// The file or object involved.
    pub path: String,
    /// What is wrong.
    pub issue: String,
    /// The repair taken (or the one `--fix` would take).
    pub action: String,
    /// Whether the repair ran and succeeded.
    pub repaired: bool,
    /// Set when a repair was attempted and failed.
    pub error: Option<String>,
}

/// The overall outcome of a doctor run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoctorVerdict {
    /// Every state kind is sound.
    Healthy,
    /// Problems were found and every one was repaired.
    Repaired,
    /// Problems were found and left in place (no `--fix`).
    IssuesFound,
    /// At least one repair was attempted and failed.
    RepairFailed,
}

impl DoctorVerdict {
    /// The verdict's wire name, as emitted in the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            DoctorVerdict::Healthy => "healthy",
            DoctorVerdict::Repaired => "repaired",
            DoctorVerdict::IssuesFound => "issues-found",
            DoctorVerdict::RepairFailed => "repair-failed",
        }
    }
}

/// The machine-readable result of a doctor run.
#[derive(Debug, Clone, Serialize)]
pub struct DoctorReport {
    /// Whether repairs were enabled.
    pub fix: bool,
    /// The bin directory audited.
    pub bin_dir: String,
    /// The store root audited, if any.
    pub store: Option<String>,
    /// State kinds that were audited.
    pub checked: Vec<String>,
    /// Everything the audit found.
    pub findings: Vec<DoctorFinding>,
    /// The verdict's wire name (see [`DoctorVerdict::as_str`]).
    pub verdict: String,
    /// The CLI exit code for this verdict.
    pub exit_code: i32,
}

impl DoctorReport {
    /// The typed verdict (the JSON carries its wire name).
    pub fn verdict(&self) -> DoctorVerdict {
        match self.verdict.as_str() {
            "healthy" => DoctorVerdict::Healthy,
            "repaired" => DoctorVerdict::Repaired,
            "issues-found" => DoctorVerdict::IssuesFound,
            _ => DoctorVerdict::RepairFailed,
        }
    }

    /// Exit code: `0` healthy/repaired, `4` issues without `--fix`,
    /// `3` repair failed.
    pub fn exit_code(&self) -> i32 {
        self.exit_code
    }

    /// The report as a single line of JSON (the vendored serde_json
    /// serializes compactly), for `smlsc doctor` output and scripts.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".into())
    }
}

/// Runs the full audit (and repairs, when `opts.fix`) over every state
/// kind in `opts.bin_dir` and `opts.store`.
pub fn run(opts: &DoctorOptions) -> DoctorReport {
    let mut findings = Vec::new();
    let mut checked = Vec::new();

    checked.push("stamps".to_string());
    audit_stamps(&opts.bin_dir, opts.fix, &mut findings);
    checked.push("pack".to_string());
    audit_pack(&opts.bin_dir, opts.fix, &mut findings);
    checked.push("deps".to_string());
    audit_deps(&opts.bin_dir, opts.fix, &mut findings);
    checked.push("ledger".to_string());
    audit_ledger(&opts.bin_dir, opts.fix, &mut findings);
    if let Some(root) = &opts.store {
        checked.push("store".to_string());
        audit_store(root, opts.fix, &mut findings);
    }
    checked.push("daemon".to_string());
    audit_daemon(&opts.bin_dir, opts.fix, &mut findings);
    checked.push("litter".to_string());
    audit_litter(&opts.bin_dir, opts.fix, &mut findings);

    let verdict = if findings.is_empty() {
        DoctorVerdict::Healthy
    } else if findings.iter().any(|f| f.error.is_some()) {
        DoctorVerdict::RepairFailed
    } else if findings.iter().all(|f| f.repaired) {
        DoctorVerdict::Repaired
    } else if opts.fix {
        DoctorVerdict::RepairFailed
    } else {
        DoctorVerdict::IssuesFound
    };
    let exit_code = match verdict {
        DoctorVerdict::Healthy | DoctorVerdict::Repaired => 0,
        DoctorVerdict::IssuesFound => 4,
        DoctorVerdict::RepairFailed => 3,
    };
    DoctorReport {
        fix: opts.fix,
        bin_dir: opts.bin_dir.display().to_string(),
        store: opts.store.as_ref().map(|p| p.display().to_string()),
        checked,
        findings,
        verdict: verdict.as_str().to_string(),
        exit_code,
    }
}

fn finding(
    state: &str,
    path: &Path,
    issue: impl Into<String>,
    action: impl Into<String>,
) -> DoctorFinding {
    DoctorFinding {
        state: state.into(),
        path: path.display().to_string(),
        issue: issue.into(),
        action: action.into(),
        repaired: false,
        error: None,
    }
}

/// Applies `repair` when `fix` is set and records the outcome.
fn apply_fix(
    mut f: DoctorFinding,
    fix: bool,
    repair: impl FnOnce() -> Result<(), String>,
) -> DoctorFinding {
    if fix {
        match repair() {
            Ok(()) => f.repaired = true,
            Err(e) => f.error = Some(e),
        }
    }
    f
}

/// Stamps are pure hints: a corrupt file is simply deleted and the
/// next build re-digests every source the cold way.
fn audit_stamps(bin_dir: &Path, fix: bool, findings: &mut Vec<DoctorFinding>) {
    let path = bin_dir.join("stamps.json");
    if let Some(Err(reason)) = StampCache::audit(&path) {
        let f = finding("stamps", &path, reason, "delete corrupt stamp file");
        findings.push(apply_fix(f, fix, || {
            std::fs::remove_file(&path).map_err(|e| e.to_string())
        }));
    }
}

/// An unreadable pack index is quarantined aside (`.corrupt`); a pack
/// whose index is fine but with bodies failing their digests is
/// rewritten keeping only the valid entries, so the next build
/// recompiles exactly the lost units.
fn audit_pack(bin_dir: &Path, fix: bool, findings: &mut Vec<DoctorFinding>) {
    let path = bin_dir.join(PACK_FILE);
    match PackReader::open(&path) {
        Ok(None) => {}
        Err(e) => {
            let f = finding(
                "pack",
                &path,
                format!("unreadable pack: {e}"),
                "move aside to bins.pack.corrupt (next build recompiles all)",
            );
            findings.push(apply_fix(f, fix, || {
                std::fs::rename(&path, path.with_extension("pack.corrupt"))
                    .map_err(|e| e.to_string())
            }));
        }
        Ok(Some(reader)) => {
            let mut bad = Vec::new();
            let mut good = Vec::new();
            for entry in reader.entries() {
                match reader.read_body(entry.offset, entry.len, entry.digest) {
                    Ok(body) => good.push((entry.clone(), body)),
                    Err(detail) => bad.push((entry.name, detail)),
                }
            }
            if bad.is_empty() {
                return;
            }
            let issue = format!(
                "{} of {} bodies fail digest verification: {}",
                bad.len(),
                reader.entries().len(),
                bad.iter()
                    .map(|(n, _)| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let f = finding(
                "pack",
                &path,
                issue,
                format!("rewrite pack keeping {} valid bodies", good.len()),
            );
            findings.push(apply_fix(f, fix, || {
                rewrite_pack(&path, &good).map_err(|e| e.to_string())
            }));
        }
    }
}

/// The import-DAG sidecar is pure derived state: a corrupt `deps.pack`
/// is simply deleted and the next build re-derives the graph from the
/// per-unit analyses (then republishes the sidecar).
fn audit_deps(bin_dir: &Path, fix: bool, findings: &mut Vec<DoctorFinding>) {
    let path = bin_dir.join(crate::depgraph::DEPS_FILE);
    if !path.is_file() {
        return;
    }
    if let Err(reason) = crate::depgraph::DepGraph::audit(&path) {
        let f = finding(
            "deps",
            &path,
            format!("corrupt import-DAG sidecar: {reason}"),
            "delete (next build re-derives the graph from analyses)",
        );
        findings.push(apply_fix(f, fix, || {
            std::fs::remove_file(&path).map_err(|e| e.to_string())
        }));
    }
}

fn rewrite_pack(path: &Path, good: &[(crate::pack::PackEntry, Vec<u8>)]) -> Result<(), CoreError> {
    let mut w = PackWriter::create(path)?;
    for (entry, body) in good {
        w.add(&entry.meta(), body, entry.digest)?;
    }
    w.finish()?;
    Ok(())
}

/// The ledger's own audit/compact pair does all the work here.
fn audit_ledger(bin_dir: &Path, fix: bool, findings: &mut Vec<DoctorFinding>) {
    let ledger = Ledger::for_bin_dir(bin_dir);
    let audit = ledger.audit();
    if audit.is_healthy() {
        return;
    }
    let issue = format!(
        "{} of {} lines invalid{}",
        audit.lines - audit.valid,
        audit.lines,
        if audit.torn_tail { " (torn tail)" } else { "" }
    );
    let f = finding(
        "ledger",
        ledger.path(),
        issue,
        "compact to valid records only",
    );
    findings.push(apply_fix(f, fix, || {
        ledger
            .compact_valid()
            .map(|_| ())
            .map_err(|e| e.to_string())
    }));
}

/// Shared with `smlsc cache verify`: [`Store::verify`] checks every
/// object and quarantines failures (non-destructive, reversible until
/// `gc`), so corrupt objects count as repaired even without `--fix`.
/// Staging litter in `tmp/` is additionally swept under `--fix`.
fn audit_store(root: &Path, fix: bool, findings: &mut Vec<DoctorFinding>) {
    let store = match Store::open(root) {
        Ok(s) => s,
        Err(e) => {
            findings.push(finding(
                "store",
                root,
                format!("store cannot be opened: {e}"),
                "manual intervention (root unusable)",
            ));
            return;
        }
    };
    match store.verify() {
        Ok(report) => {
            if !report.corrupt.is_empty() {
                let mut f = finding(
                    "store",
                    root,
                    format!(
                        "{} of {} objects corrupt: {}",
                        report.corrupt.len(),
                        report.checked,
                        report.corrupt.join(", ")
                    ),
                    "quarantined by verify",
                );
                f.repaired = true;
                findings.push(f);
            }
        }
        Err(e) => findings.push(finding(
            "store",
            root,
            format!("verify failed: {e}"),
            "manual intervention",
        )),
    }
    let tmp_dir = root.join("tmp");
    let litter = std::fs::read_dir(&tmp_dir)
        .map(|r| r.flatten().count())
        .unwrap_or(0);
    if litter > 0 {
        let f = finding(
            "store",
            &tmp_dir,
            format!("{litter} staging files left by interrupted publishes"),
            "sweep tmp litter",
        );
        findings.push(apply_fix(f, fix, || {
            store
                .sweep_tmp(Duration::ZERO)
                .map(|_| ())
                .map_err(|e| e.to_string())
        }));
    }
}

/// A socket or lockfile whose recorded owner is dead will never serve
/// again; clearing both lets the next `daemon start` come up cleanly.
/// A live owner is healthy and left alone.
fn audit_daemon(bin_dir: &Path, fix: bool, findings: &mut Vec<DoctorFinding>) {
    let lock = bin_dir.join(DAEMON_LOCK_FILE);
    let sock = bin_dir.join(DAEMON_SOCKET_FILE);
    let owner: Option<u64> = std::fs::read_to_string(&lock)
        .ok()
        .and_then(|s| s.trim().parse().ok());
    let owner_alive = owner.is_some_and(pid_alive);
    if lock.exists() && !owner_alive {
        let issue = match owner {
            Some(pid) => format!("lockfile names dead pid {pid}"),
            None => "lockfile holds no parseable pid".to_string(),
        };
        let f = finding("daemon", &lock, issue, "remove stale lockfile and socket");
        findings.push(apply_fix(f, fix, || {
            std::fs::remove_file(&lock).map_err(|e| e.to_string())?;
            std::fs::remove_file(&sock).ok();
            Ok(())
        }));
    } else if sock.exists() && !lock.exists() {
        let f = finding(
            "daemon",
            &sock,
            "socket exists with no lockfile (daemon died before cleanup)",
            "remove stale socket",
        );
        findings.push(apply_fix(f, fix, || {
            std::fs::remove_file(&sock).map_err(|e| e.to_string())
        }));
    }
}

/// Is the process alive?  Mirrors the daemon crate's liveness test: a
/// zombie counts as dead — it will never serve its socket again.
fn pid_alive(pid: u64) -> bool {
    let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
        return false;
    };
    !matches!(
        stat.rfind(')')
            .and_then(|i| stat[i + 1..].trim_start().chars().next()),
        Some('Z') | None
    )
}

/// Staging files (`*.tmp-<pid>-<seq>`) in the bin directory are debris
/// from atomic commits interrupted between write and rename.
fn audit_litter(bin_dir: &Path, fix: bool, findings: &mut Vec<DoctorFinding>) {
    let Ok(entries) = std::fs::read_dir(bin_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if fsutil::is_tmp_litter(name) {
            let path = entry.path();
            let f = finding(
                "litter",
                &path,
                "staging file left by an interrupted commit",
                "delete",
            );
            findings.push(apply_fix(f, fix, || {
                std::fs::remove_file(&path).map_err(|e| e.to_string())
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smlsc-doctor-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts(dir: &Path, fix: bool) -> DoctorOptions {
        DoctorOptions {
            bin_dir: dir.to_path_buf(),
            store: None,
            fix,
        }
    }

    #[test]
    fn empty_bin_dir_is_healthy() {
        let dir = temp("healthy");
        let report = run(&opts(&dir, false));
        assert_eq!(report.verdict(), DoctorVerdict::Healthy);
        assert_eq!(report.exit_code(), 0);
        assert!(report.findings.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_state_is_reported_then_repaired() {
        let dir = temp("repair");
        // Corrupt stamps: right magic, garbage payload.
        std::fs::write(dir.join("stamps.json"), b"SMLSSTM2garbage").unwrap();
        // Corrupt import-DAG sidecar: right magic, garbage payload.
        std::fs::write(dir.join("deps.pack"), b"SMLSDEP1garbage").unwrap();
        // Torn ledger tail.
        std::fs::write(dir.join("builds.jsonl"), b"{\"v\":9,\"truncated").unwrap();
        // Commit litter.
        std::fs::write(dir.join("stamps.tmp-1-1"), b"half").unwrap();
        // Stale daemon lock + socket for a certainly-dead pid.
        std::fs::write(dir.join("daemon.lock"), format!("{}\n", u32::MAX)).unwrap();
        std::fs::write(dir.join("daemon.sock"), b"").unwrap();

        let report = run(&opts(&dir, false));
        assert_eq!(report.verdict(), DoctorVerdict::IssuesFound);
        assert_eq!(report.exit_code(), 4);
        let states: Vec<&str> = report.findings.iter().map(|f| f.state.as_str()).collect();
        for want in ["stamps", "deps", "ledger", "daemon", "litter"] {
            assert!(states.contains(&want), "missing finding for {want}");
        }
        // The report is valid JSON naming the verdict.
        assert!(report.to_json().contains("issues-found"));

        let fixed = run(&opts(&dir, true));
        assert_eq!(fixed.verdict(), DoctorVerdict::Repaired);
        assert_eq!(fixed.exit_code(), 0);
        assert!(fixed.findings.iter().all(|f| f.repaired));

        // Everything is clean now.
        let clean = run(&opts(&dir, false));
        assert_eq!(clean.verdict(), DoctorVerdict::Healthy);
        assert!(!dir.join("daemon.lock").exists());
        assert!(!dir.join("daemon.sock").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_daemon_lock_is_left_alone() {
        let dir = temp("livelock");
        // Our own pid is alive.
        std::fs::write(dir.join("daemon.lock"), format!("{}\n", std::process::id())).unwrap();
        let report = run(&opts(&dir, true));
        assert_eq!(report.verdict(), DoctorVerdict::Healthy);
        assert!(dir.join("daemon.lock").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
