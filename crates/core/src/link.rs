//! Type-safe linkage and execution (§3, §5).
//!
//! The dynamic environment maps unit names to their export records, each
//! tagged with the export pid of the statenv it was produced under.
//! Linking a unit verifies that every recorded import pid matches the
//! corresponding unit's *current* export pid — the check that makes
//! "makefile bugs" (§5: a stale interface silently linked against a new
//! implementation) impossible by construction.

use std::collections::HashMap;

use smlsc_dynamics::eval::execute;
use smlsc_dynamics::value::Value;
use smlsc_ids::{Pid, Symbol};

use crate::unit::CompiledUnit;

/// Why linking failed.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// An imported unit has not been executed into the environment.
    MissingImport {
        /// The unit being linked.
        unit: Symbol,
        /// The absent import.
        import: Symbol,
    },
    /// The import pid recorded at compile time does not match the export
    /// pid in the environment — a stale bin file.
    PidMismatch {
        /// The unit being linked.
        unit: Symbol,
        /// The offending import.
        import: Symbol,
        /// What the unit was compiled against.
        want: Pid,
        /// What the environment currently holds.
        have: Pid,
    },
    /// Execution of the unit's code failed.
    Execution(String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::MissingImport { unit, import } => {
                write!(f, "linking `{unit}`: import `{import}` is not loaded")
            }
            LinkError::PidMismatch {
                unit,
                import,
                want,
                have,
            } => write!(
                f,
                "linking `{unit}`: import `{import}` has pid {have}, but the unit was \
                 compiled against {want} (stale bin file)"
            ),
            LinkError::Execution(m) => write!(f, "execution failed: {m}"),
        }
    }
}

impl std::error::Error for LinkError {}

/// One unit's dynamic exports.
#[derive(Debug, Clone)]
pub struct LinkedUnit {
    /// The export pid of the statenv these values were produced under.
    pub export_pid: Pid,
    /// The export record.
    pub values: Value,
}

/// The dynamic environment (§3's `dynenv`): unit name → export record.
#[derive(Debug, Clone, Default)]
pub struct DynEnv {
    units: HashMap<Symbol, LinkedUnit>,
}

impl DynEnv {
    /// An empty environment.
    pub fn new() -> DynEnv {
        DynEnv::default()
    }

    /// Looks up a unit's exports.
    pub fn get(&self, unit: Symbol) -> Option<&LinkedUnit> {
        self.units.get(&unit)
    }

    /// Installs (or replaces) a unit's exports.
    pub fn insert(&mut self, unit: Symbol, linked: LinkedUnit) {
        self.units.insert(unit, linked);
    }

    /// Number of linked units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when no unit is linked.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }
}

/// Verifies a unit's imports against `env` without executing.
///
/// # Errors
///
/// [`LinkError::MissingImport`] or [`LinkError::PidMismatch`].
pub fn verify_imports(unit: &CompiledUnit, env: &DynEnv) -> Result<(), LinkError> {
    for edge in &unit.imports {
        let linked = env.get(edge.unit).ok_or(LinkError::MissingImport {
            unit: unit.name,
            import: edge.unit,
        })?;
        if linked.export_pid != edge.pid {
            return Err(LinkError::PidMismatch {
                unit: unit.name,
                import: edge.unit,
                want: edge.pid,
                have: linked.export_pid,
            });
        }
    }
    Ok(())
}

/// Links and executes a unit: verifies import pids, gathers the import
/// records in slot order, runs the code, and installs the exports.
///
/// Returns the unit's export record.
///
/// # Errors
///
/// Any [`LinkError`]; on error the environment is unchanged.
pub fn link_and_execute(unit: &CompiledUnit, env: &mut DynEnv) -> Result<Value, LinkError> {
    let _span = smlsc_trace::span("link.execute").field("unit", unit.name.as_str());
    verify_imports(unit, env)?;
    let imports: Vec<Value> = unit
        .imports
        .iter()
        .map(|e| env.get(e.unit).expect("verified above").values.clone())
        .collect();
    let value = execute(&unit.code, &imports).map_err(|e| LinkError::Execution(e.to_string()))?;
    env.insert(
        unit.name,
        LinkedUnit {
            export_pid: unit.export_pid,
            values: value.clone(),
        },
    );
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::ImportEdge;
    use smlsc_dynamics::ir::Ir;

    fn unit(name: &str, imports: Vec<ImportEdge>, code: Ir) -> CompiledUnit {
        CompiledUnit {
            name: Symbol::intern(name),
            source_pid: Pid::of_bytes(name.as_bytes()),
            imports,
            export_pid: Pid::of_bytes(format!("{name}-exports").as_bytes()),
            env_pickle: Vec::new(),
            code,
        }
    }

    #[test]
    fn linking_a_leaf_unit() {
        let mut env = DynEnv::new();
        let u = unit("a", vec![], Ir::Record(vec![Ir::Int(1)]));
        let v = link_and_execute(&u, &mut env).unwrap();
        assert!(matches!(v, Value::Record(_)));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn missing_import_is_rejected() {
        let mut env = DynEnv::new();
        let u = unit(
            "b",
            vec![ImportEdge {
                unit: Symbol::intern("a"),
                pid: Pid::of_bytes(b"x"),
            }],
            Ir::Import(0),
        );
        let err = link_and_execute(&u, &mut env).unwrap_err();
        assert!(matches!(err, LinkError::MissingImport { .. }));
    }

    #[test]
    fn stale_pid_is_rejected() {
        let mut env = DynEnv::new();
        let a = unit("a", vec![], Ir::Record(vec![]));
        link_and_execute(&a, &mut env).unwrap();
        let b = unit(
            "b",
            vec![ImportEdge {
                unit: Symbol::intern("a"),
                pid: Pid::of_bytes(b"an-older-interface"),
            }],
            Ir::Import(0),
        );
        let err = link_and_execute(&b, &mut env).unwrap_err();
        assert!(matches!(err, LinkError::PidMismatch { .. }), "{err}");
    }

    #[test]
    fn matching_pid_links() {
        let mut env = DynEnv::new();
        let a = unit("a", vec![], Ir::Record(vec![Ir::Int(9)]));
        let a_pid = a.export_pid;
        link_and_execute(&a, &mut env).unwrap();
        let b = unit(
            "b",
            vec![ImportEdge {
                unit: Symbol::intern("a"),
                pid: a_pid,
            }],
            Ir::Select(Box::new(Ir::Import(0)), 0),
        );
        // b's "export record" here is just the selected int, fine for the test.
        let v = link_and_execute(&b, &mut env).unwrap();
        assert_eq!(v, Value::Int(9));
    }
}
