//! `smlsc-core`: the paper's primary contribution.
//!
//! Appel & MacQueen, *Separate Compilation for Standard ML* (PLDI 1994),
//! reproduced in Rust:
//!
//! * [`hash`] — intrinsic pids: 128-bit interface digests with
//!   provisional-pid alpha conversion (§5);
//! * [`mod@unit`] — compiled units and bin files
//!   (`Unit = statenv × code × imports × exports`, §3);
//! * [`compile`] — the compile pipeline gluing the frontend
//!   (`smlsc-syntax`, `smlsc-statics`), the hasher and the pickler
//!   (`smlsc-pickle`) into §3's `compile`;
//! * [`link`] — type-safe linkage: import/export pid verification before
//!   execution (§5);
//! * [`irm`] — the Incremental Recompilation Manager with **cutoff**
//!   recompilation, plus `make`-timestamp and classical baselines
//!   (§1, §6, §8);
//! * [`session`] — the Visible Compiler's interactive
//!   compile-and-execute loop as a client of the same primitives (§7);
//! * [`resident`] — the long-lived build session behind the `smlsc`
//!   daemon: project state held hot in memory, file-event deltas
//!   instead of rescans, serialized builds, snapshot-consistent
//!   reports.
//!
//! # Examples
//!
//! The headline behaviour — a body edit recompiles one unit, and the
//! rebuild cascade is cut off because the interface hash is unchanged:
//!
//! ```
//! use smlsc_core::irm::{Irm, Project, Strategy};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = Project::new();
//! p.add("a", "structure A = struct fun f x = x + 1 end");
//! p.add("b", "structure B = struct val y = A.f 1 end");
//! let mut irm = Irm::new(Strategy::Cutoff);
//! irm.build(&p)?;
//!
//! // Change A's body without changing its interface:
//! p.edit("a", "structure A = struct fun f x = x + 2 end")?;
//! let report = irm.build(&p)?;
//! assert!(report.was_recompiled("a"));
//! assert!(!report.was_recompiled("b")); // cutoff!
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod depgraph;
pub mod doctor;
pub mod fsutil;
pub mod groups;
pub mod hash;
pub mod ircodec;
pub mod irm;
pub mod ledger;
pub mod link;
pub mod pack;
pub mod profile;
pub mod resident;
pub mod session;
pub mod stamps;
pub mod stdlib;
pub mod unit;

use std::fmt;

use smlsc_ids::Symbol;

pub use compile::{compile_unit, CompileOutput, CompileTimings, ImportSource};
pub use depgraph::{DepGraph, DEPS_FILE};
pub use doctor::{DoctorReport, DoctorVerdict};
pub use groups::{Group, GroupedProject};
pub use hash::{hash_exports, HashError, HashResult};
pub use irm::{BuildReport, FailurePolicy, Irm, Project, Strategy, UnitOutcome};
pub use ledger::{build_report_json, Ledger, LedgerAudit, LedgerRecord, LEDGER_VERSION};
pub use link::{link_and_execute, DynEnv, LinkError};
pub use profile::BuildProfile;
pub use resident::{BuildSnapshot, FileEvent, Resident};
pub use session::Session;
pub use smlsc_store as store;
pub use smlsc_trace as trace;
pub use smlsc_trace::RebuildDecision;
pub use stamps::StampCache;
pub use stdlib::{add_stdlib, stdlib_units};
pub use unit::{BinFile, BinMeta, CompiledUnit, ImportEdge, BIN_FORMAT_VERSION};

/// Any error from the compilation manager.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// A source file failed to parse.
    Parse {
        /// The unit.
        unit: Symbol,
        /// The parser's error.
        error: smlsc_syntax::ParseError,
    },
    /// Elaboration (type checking) failed.
    Elab {
        /// The unit.
        unit: Symbol,
        /// The elaborator's error.
        error: smlsc_statics::ElabError,
    },
    /// Interface hashing failed.
    Hash {
        /// The unit.
        unit: Symbol,
        /// The hasher's error.
        error: HashError,
    },
    /// Pickling or unpickling failed.
    Pickle {
        /// The unit.
        unit: Symbol,
        /// The pickler's error.
        error: smlsc_pickle::PickleError,
    },
    /// A bin file is malformed.
    CorruptBin(String),
    /// A lazily loaded pack body failed digest verification or parsing
    /// when first forced.  The archive index was fine — only this one
    /// unit's body is bad — so the manager quarantines the unit (drops
    /// it from the cache) and recompiles it alone.
    BinBodyCorrupt {
        /// The unit whose body is bad.
        unit: Symbol,
        /// What the verification found.
        detail: String,
    },
    /// A unit imports a name no project unit exports.
    UnresolvedImport {
        /// The importing unit.
        unit: Symbol,
        /// The unresolved module name.
        name: Symbol,
    },
    /// Two units export the same top-level name.
    DuplicateExport {
        /// The clashing name.
        name: Symbol,
        /// The exporting units.
        units: Vec<Symbol>,
    },
    /// The import graph is cyclic.
    ImportCycle(Vec<Symbol>),
    /// No such unit.
    UnknownUnit(Symbol),
    /// A unit references a name its group cannot see (§9 libraries).
    GroupVisibility {
        /// The offending unit.
        unit: Symbol,
        /// The referenced name.
        name: Symbol,
        /// The group defining the name.
        group: Symbol,
        /// Why it is invisible.
        reason: String,
    },
    /// Linking or execution failed.
    Link(LinkError),
    /// Filesystem failure while persisting bins.
    Io(String),
    /// Filesystem failure on one unit's bin file, naming both the unit
    /// and the path so keep-going reports can pinpoint it.
    BinIo {
        /// The unit whose bin was being read or written.
        unit: Symbol,
        /// The bin file involved.
        path: std::path::PathBuf,
        /// The underlying error message.
        error: String,
    },
    /// The compiler itself failed on this unit — a caught panic or a
    /// broken invariant.  A bug in smlsc, never in the user's source;
    /// the unit (and its dependents) fail, the build machinery survives.
    Internal {
        /// The unit being compiled when the panic fired.
        unit: Symbol,
        /// The panic payload (or invariant description).
        message: String,
    },
    /// A deterministically injected fault (chaos testing only).
    Injected {
        /// The unit at which the fault fired.
        unit: Symbol,
        /// The fault point name (e.g. `compile.unit`).
        point: &'static str,
    },
}

impl CoreError {
    /// True for internal-error-class failures (caught compiler panics,
    /// broken invariants): bugs in smlsc, not in the user's source.
    /// The CLI maps these to their own exit code.
    pub fn is_internal(&self) -> bool {
        matches!(self, CoreError::Internal { .. })
    }

    /// True for store/filesystem IO-class failures; the CLI maps these
    /// to their own exit code, distinct from source errors.
    pub fn is_io(&self) -> bool {
        matches!(self, CoreError::Io(_) | CoreError::BinIo { .. })
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse { unit, error } => write!(f, "unit `{unit}`: {error}"),
            CoreError::Elab { unit, error } => write!(f, "unit `{unit}`: {error}"),
            CoreError::Hash { unit, error } => write!(f, "unit `{unit}`: {error}"),
            CoreError::Pickle { unit, error } => write!(f, "unit `{unit}`: {error}"),
            CoreError::CorruptBin(m) => write!(f, "corrupt bin file: {m}"),
            CoreError::BinBodyCorrupt { unit, detail } => {
                write!(f, "unit `{unit}`: corrupt archived bin body: {detail}")
            }
            CoreError::UnresolvedImport { unit, name } => {
                write!(f, "unit `{unit}` imports `{name}`, which no unit exports")
            }
            CoreError::DuplicateExport { name, units } => {
                let list: Vec<String> = units.iter().map(|u| format!("`{u}`")).collect();
                write!(f, "`{name}` is exported by {}", list.join(" and "))
            }
            CoreError::ImportCycle(units) => {
                let list: Vec<String> = units.iter().map(|u| u.to_string()).collect();
                write!(f, "import cycle: {}", list.join(" -> "))
            }
            CoreError::UnknownUnit(u) => write!(f, "unknown unit `{u}`"),
            CoreError::GroupVisibility {
                unit,
                name,
                group,
                reason,
            } => write!(
                f,
                "unit `{unit}` cannot use `{name}` from group `{group}`: {reason}"
            ),
            CoreError::Link(e) => write!(f, "{e}"),
            CoreError::Io(m) => write!(f, "io error: {m}"),
            CoreError::BinIo { unit, path, error } => {
                write!(f, "unit `{unit}`: bin file {}: {error}", path.display())
            }
            CoreError::Internal { unit, message } => {
                write!(f, "unit `{unit}`: internal compiler error: {message}")
            }
            CoreError::Injected { unit, point } => {
                write!(f, "unit `{unit}`: injected fault at `{point}`")
            }
        }
    }
}

impl std::error::Error for CoreError {}
