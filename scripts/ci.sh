#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> no tracked build artifacts"
if git ls-files -- 'target/' | grep -q .; then
  echo "error: build artifacts under target/ are tracked; git rm -r --cached target/" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> parallel equivalence (wavefront scheduler, jobs > 1)"
cargo test -q --test parallel

echo "==> corruption recovery + concurrent store sharing"
cargo test -q --test corruption
cargo test -q --test store_concurrency
cargo test -q -p smlsc --test cache_cli

echo "==> smlsc build --jobs 4 smoke"
d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT
printf 'structure Util = struct fun inc x = x + 1 end\n' > "$d/util.sml"
printf 'structure Main = struct val v = Util.inc 41 end\n' > "$d/main.sml"
./target/release/smlsc build --jobs 4 --explain "$d"

echo "==> artifact-store two-pass cache smoke"
# Pass 1 populates the store; wiping the project's bins makes pass 2 a
# cold session that must be served entirely from the store: the stats
# JSON shows store hits and no unit compiles at all.
store="$d/store"
rm -rf "$d/.smlsc-bins"   # the --jobs smoke above already built this dir
./target/release/smlsc build --store "$store" "$d"
rm -rf "$d/.smlsc-bins"
stats=$(./target/release/smlsc build --stats --store "$store" "$d" | grep '^{')
echo "$stats" | grep -q '"store.hit":2' \
  || { echo "error: warm-store rebuild was not all store hits: $stats" >&2; exit 1; }
if echo "$stats" | grep -q '"irm.units_compiled"'; then
  echo "error: warm-store rebuild compiled units: $stats" >&2; exit 1
fi
./target/release/smlsc cache verify --store "$store"
./target/release/smlsc cache stats --store "$store"

echo "==> warm null-build smoke (stamp cache + indexed archive)"
w=$(mktemp -d)
trap 'rm -rf "$d" "$w"' EXIT
printf 'structure Util = struct fun inc x = x + 1 end\n' > "$w/util.sml"
printf 'structure Main = struct val v = Util.inc 41 end\n' > "$w/main.sml"
./target/release/smlsc build "$w"
# The second build of an unchanged project must compile nothing, read
# no source file (every stamp hits), and parse only the archive index.
stats=$(./target/release/smlsc build --stats "$w" | grep '^{')
echo "$stats" | grep -q '"stamp.hits":2' \
  || { echo "error: warm rebuild did not hit every stamp: $stats" >&2; exit 1; }
echo "$stats" | grep -q '"bin.index_only":2' \
  || { echo "error: warm rebuild did not load bins index-only: $stats" >&2; exit 1; }
for bad in '"source.reads"' '"irm.units_compiled"'; do
  if echo "$stats" | grep -q "$bad"; then
    echo "error: warm rebuild did source work ($bad): $stats" >&2; exit 1
  fi
done

echo "==> null-build benchmark (smoke)"
./target/release/null_build --smoke --out "$w/BENCH_null.json"
cat "$w/BENCH_null.json"; echo

echo "==> monorepo benchmark (smoke, N=5k)"
./target/release/monorepo --smoke --out "$w/BENCH_monorepo.json"
cat "$w/BENCH_monorepo.json"; echo

echo "==> perf: ledger + profiler test suites"
cargo test -q -p smlsc-core --lib
cargo test -q -p smlsc-bench --lib
cargo test -q -p smlsc --test profile_cli
cargo test -q --test telemetry

echo "==> perf: warm-build ledger smoke (profile + history)"
p=$(mktemp -d)
trap 'rm -rf "$d" "$w" "$p"' EXIT
printf 'structure Util = struct fun inc x = x + 1 end\n' > "$p/util.sml"
printf 'structure Main = struct val v = Util.inc 41 end\n' > "$p/main.sml"
./target/release/smlsc build --jobs 4 "$p"
./target/release/smlsc profile --jobs 4 "$p"
./target/release/smlsc history "$p"
ledger="$p/.smlsc-bins/builds.jsonl"
# Two builds (build + profile's build), two records; the second
# compiled nothing.
[ "$(wc -l < "$ledger")" -eq 2 ] \
  || { echo "error: expected 2 ledger records:" >&2; cat "$ledger" >&2; exit 1; }
tail -1 "$ledger" | grep -q '"compiled":0' \
  || { echo "error: warm build compiled units:" >&2; tail -1 "$ledger" >&2; exit 1; }

echo "==> perf: regression gate vs committed baselines"
scripts/check_bench

echo "==> perf: monorepo scale smoke (N=100k, counters asserted)"
# Cold + no-op + one-leaf edit at 100,000 units, gated on counters:
# the no-op reads zero sources and schedules an empty dirty set, the
# import DAG rehydrates from its deps.pack sidecar, and the leaf
# edit's dirty seed and cone are both exactly the one edited unit.
./target/release/monorepo --scale-smoke

echo "==> chaos: fault-injection test suites"
cargo test -q -p smlsc-faults
cargo test -q -p smlsc-store
cargo test -q --test chaos
cargo test -q --test keep_going

echo "==> chaos: seeded storms (--jobs 4, three fixed seeds)"
c=$(mktemp -d)
trap 'rm -rf "$d" "$c"' EXIT
printf 'structure Base = struct val n = 10 end\n' > "$c/base.sml"
for m in a b c d; do
  printf 'structure Mid_%s = struct val v = Base.n + 1 end\n' "$m" > "$c/mid_$m.sml"
done
printf 'structure Top = struct val s = Mid_a.v + Mid_b.v + Mid_c.v + Mid_d.v end\n' > "$c/top.sml"
for seed in 11 42 1994; do
  cstore="$c/store-$seed"
  rm -rf "$c/.smlsc-bins"
  SMLSC_FAULTS="seed=$seed;store.publish=torn%25;store.publish=io%20;store.fetch=io%20;store.fetch=torn%20;store.lock=io%10" \
    ./target/release/smlsc build --keep-going --jobs 4 --store "$cstore" "$c"
  # The storm may have torn published objects: the first verify
  # quarantines them (nonzero exit expected), gc purges the
  # quarantine, and the store must then verify clean.
  ./target/release/smlsc cache verify --store "$cstore" || true
  ./target/release/smlsc cache gc --store "$cstore"
  ./target/release/smlsc cache verify --store "$cstore"
done

echo "==> chaos: keep-going + exit-code smoke"
k=$(mktemp -d)
trap 'rm -rf "$d" "$c" "$k"' EXIT
printf 'structure Ok = struct val x = 1 end\n' > "$k/ok.sml"
printf 'structure Bad = struct val y = 1 + "s" end\n' > "$k/bad.sml"
printf 'structure Uses_bad = struct val z = Bad.y end\n' > "$k/uses_bad.sml"
set +e
out=$(./target/release/smlsc build -k --jobs 4 "$k" 2>&1); code=$?
set -e
[ "$code" -eq 1 ] || { echo "error: expected exit 1, got $code: $out" >&2; exit 1; }
echo "$out" | grep -q '1 failed, 1 skipped' \
  || { echo "error: missing keep-going summary: $out" >&2; exit 1; }
set +e
./target/release/smlsc build --inject-faults 'compile.unit=panic(bad)' "$k" 2>/dev/null; code=$?
set -e
[ "$code" -eq 3 ] || { echo "error: expected internal-error exit 3, got $code" >&2; exit 1; }

echo "==> crash: crash-point recovery test suites"
cargo test -q --test crash_recovery
cargo test -q -p smlsc --test crash_recovery
cargo test -q -p smlsc --test daemon_signals

echo "==> crash: kill-at-pack-save + doctor --fix smoke"
x=$(mktemp -d)
trap 'rm -rf "$d" "$c" "$k" "$x"' EXIT
printf 'structure Util = struct fun inc x = x + 1 end\n' > "$x/util.sml"
printf 'structure Main = struct val v = Util.inc 41 end\n' > "$x/main.sml"
# The injected crash aborts the build mid-pack-rename (SIGABRT = 134).
set +e
./target/release/smlsc build --no-daemon --inject-faults 'pack.save=crash(staged)' "$x" 2>/dev/null
code=$?
set -e
[ "$code" -eq 134 ] || { echo "error: expected SIGABRT exit 134, got $code" >&2; exit 1; }
# The next plain build recovers without any manual cleanup.
./target/release/smlsc build --no-daemon "$x"
# Mangle every state kind the doctor audits, then assert its exit
# codes: 4 on detection, 0 after --fix, 0 (healthy) on re-audit.
printf 'SMLSSTM2 then garbage' > "$x/.smlsc-bins/stamps.json"
printf 'SMLSDEP1garbage' > "$x/.smlsc-bins/deps.pack"
printf '{"v":1,"torn' >> "$x/.smlsc-bins/builds.jsonl"
printf 'half-staged' > "$x/.smlsc-bins/bins.tmp-99-0"
printf '4294967295\n' > "$x/.smlsc-bins/daemon.lock"
set +e
./target/release/smlsc doctor "$x" > "$x/doctor.json"; code=$?
set -e
[ "$code" -eq 4 ] || { echo "error: doctor on mangled state: expected 4, got $code" >&2; cat "$x/doctor.json" >&2; exit 1; }
grep -q '"verdict":"issues-found"' "$x/doctor.json" \
  || { echo "error: doctor verdict not issues-found:" >&2; cat "$x/doctor.json" >&2; exit 1; }
./target/release/smlsc doctor --fix "$x" > "$x/doctor-fix.json" \
  || { echo "error: doctor --fix failed" >&2; cat "$x/doctor-fix.json" >&2; exit 1; }
grep -q '"verdict":"repaired"' "$x/doctor-fix.json" \
  || { echo "error: doctor --fix verdict not repaired:" >&2; cat "$x/doctor-fix.json" >&2; exit 1; }
./target/release/smlsc doctor "$x" > "$x/doctor-clean.json" \
  || { echo "error: post-fix audit not clean" >&2; cat "$x/doctor-clean.json" >&2; exit 1; }
grep -q '"verdict":"healthy"' "$x/doctor-clean.json" \
  || { echo "error: post-fix verdict not healthy:" >&2; cat "$x/doctor-clean.json" >&2; exit 1; }
# The repaired project still builds warm.
./target/release/smlsc build --no-daemon "$x"

echo "==> daemon: resident-session + socket test suites"
cargo test -q -p smlsc-daemon
cargo test -q -p smlsc-core resident
cargo test -q --test daemon_concurrency
cargo test -q -p smlsc --test daemon_cli

echo "==> daemon: warm no-op + one-leaf-edit smoke"
g=$(mktemp -d)
trap './target/release/smlsc daemon stop "$g" >/dev/null 2>&1 || true; rm -rf "$d" "$c" "$k" "$x" "$g"' EXIT
printf 'structure Util = struct fun inc x = x + 1 end\n' > "$g/util.sml"
printf 'structure Main = struct val v = Util.inc 41 end\n' > "$g/main.sml"
./target/release/smlsc build "$g"
SMLSC_DAEMON_POLL_MS=20 ./target/release/smlsc daemon start "$g"
./target/release/smlsc daemon status "$g"
# A no-op build dispatches to the daemon's resident session: every
# rebuild decision is a stamp hit, no source is re-read, and the pack
# index is not reopened (it lives in daemon memory).
stats=$(./target/release/smlsc build --stats "$g" | grep '^{')
echo "$stats" | grep -q '"stamp.hits":2' \
  || { echo "error: daemon no-op did not hit every stamp: $stats" >&2; exit 1; }
for bad in '"source.reads"' '"bin.index_only"' '"irm.units_compiled"'; do
  if echo "$stats" | grep -q "$bad"; then
    echo "error: daemon no-op re-read state ($bad): $stats" >&2; exit 1
  fi
done
# Edit one leaf; the watcher feeds the delta into the resident session.
printf 'structure Util = struct fun inc x = x + 2 end\n' > "$g/util.sml"
for _ in $(seq 1 100); do
  ./target/release/smlsc daemon status "$g" | grep -q '"daemon.invalidations":1' && break
  sleep 0.1
done
./target/release/smlsc daemon status "$g" | grep -q '"daemon.invalidations":1' \
  || { echo "error: watcher never applied the one-leaf delta" >&2; exit 1; }
out=$(./target/release/smlsc build --stats "$g")
echo "$out" | grep -q '1 recompiled, 1 reused' \
  || { echo "error: one-leaf edit did not recompile exactly one unit: $out" >&2; exit 1; }
stats=$(echo "$out" | grep '^{')
echo "$stats" | grep -q '"source.reads":1' \
  || { echo "error: daemon re-read untouched sources: $stats" >&2; exit 1; }
./target/release/smlsc daemon stop "$g"
[ ! -e "$g/.smlsc-bins/daemon.sock" ] \
  || { echo "error: daemon stop left the socket behind" >&2; exit 1; }
[ ! -e "$g/.smlsc-bins/daemon.lock" ] \
  || { echo "error: daemon stop left the lockfile behind" >&2; exit 1; }

echo "==> daemon-latency benchmark (smoke)"
./target/release/daemon_latency --smoke --out "$g/BENCH_daemon.json"
cat "$g/BENCH_daemon.json"; echo

echo "ci: all green"
