#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> no tracked build artifacts"
if git ls-files -- 'target/' | grep -q .; then
  echo "error: build artifacts under target/ are tracked; git rm -r --cached target/" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> parallel equivalence (wavefront scheduler, jobs > 1)"
cargo test -q --test parallel

echo "==> smlsc build --jobs 4 smoke"
d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT
printf 'structure Util = struct fun inc x = x + 1 end\n' > "$d/util.sml"
printf 'structure Main = struct val v = Util.inc 41 end\n' > "$d/main.sml"
./target/release/smlsc build --jobs 4 --explain "$d"

echo "ci: all green"
