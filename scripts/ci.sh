#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "ci: all green"
