#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> no tracked build artifacts"
if git ls-files -- 'target/' | grep -q .; then
  echo "error: build artifacts under target/ are tracked; git rm -r --cached target/" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> parallel equivalence (wavefront scheduler, jobs > 1)"
cargo test -q --test parallel

echo "==> corruption recovery + concurrent store sharing"
cargo test -q --test corruption
cargo test -q --test store_concurrency
cargo test -q -p smlsc --test cache_cli

echo "==> smlsc build --jobs 4 smoke"
d=$(mktemp -d)
trap 'rm -rf "$d"' EXIT
printf 'structure Util = struct fun inc x = x + 1 end\n' > "$d/util.sml"
printf 'structure Main = struct val v = Util.inc 41 end\n' > "$d/main.sml"
./target/release/smlsc build --jobs 4 --explain "$d"

echo "==> artifact-store two-pass cache smoke"
# Pass 1 populates the store; wiping the project's bins makes pass 2 a
# cold session that must be served entirely from the store: the stats
# JSON shows store hits and no unit compiles at all.
store="$d/store"
rm -rf "$d/.smlsc-bins"   # the --jobs smoke above already built this dir
./target/release/smlsc build --store "$store" "$d"
rm -rf "$d/.smlsc-bins"
stats=$(./target/release/smlsc build --stats --store "$store" "$d" | grep '^{')
echo "$stats" | grep -q '"store.hit":2' \
  || { echo "error: warm-store rebuild was not all store hits: $stats" >&2; exit 1; }
if echo "$stats" | grep -q '"irm.units_compiled"'; then
  echo "error: warm-store rebuild compiled units: $stats" >&2; exit 1
fi
./target/release/smlsc cache verify --store "$store"
./target/release/smlsc cache stats --store "$store"

echo "ci: all green"
