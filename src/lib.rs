//! Root integration package; see the `smlsc` umbrella crate.
