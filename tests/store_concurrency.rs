//! Concurrent builders sharing one artifact store: in-process threads
//! racing on the same keys must leave a consistent store and agree on
//! every export pid.

use std::path::PathBuf;
use std::sync::Arc;

use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_core::store::{GcConfig, Store};
use smlsc_ids::Pid;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-conc-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn project() -> Project {
    let mut p = Project::new();
    p.add("base", "structure Base = struct val n = 10 end");
    for m in ["a", "b", "c", "d"] {
        p.add(
            format!("mid_{m}"),
            format!("structure Mid_{m} = struct val v = Base.n + 1 end"),
        );
    }
    p.add(
        "top",
        "structure Top = struct val s = Mid_a.v + Mid_b.v + Mid_c.v + Mid_d.v end",
    );
    p
}

const UNITS: [&str; 6] = ["base", "mid_a", "mid_b", "mid_c", "mid_d", "top"];

fn export_pids(irm: &Irm) -> Vec<(String, Pid)> {
    let mut pids: Vec<(String, Pid)> = UNITS
        .iter()
        .map(|n| (n.to_string(), irm.bin(n).unwrap().unit.export_pid))
        .collect();
    pids.sort();
    pids
}

#[test]
fn racing_cold_builders_share_one_store_consistently() {
    let root = temp_store("race");
    let store = Arc::new(Store::open(&root).unwrap());

    // Several cold sessions build the same project at once, all racing
    // to publish the same six keys. Whoever loses a race either finds
    // the object already present or fetches it; nobody corrupts it.
    let sessions: Vec<Irm> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|j| {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let p = project();
                    let mut irm = Irm::with_store(Strategy::Cutoff, store);
                    irm.build_with_jobs(&p, 1 + j % 3).unwrap();
                    irm
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All sessions agree on every pid.
    let reference = export_pids(&sessions[0]);
    for irm in &sessions[1..] {
        assert_eq!(export_pids(irm), reference);
    }

    // The store holds exactly one object per unit, all valid.
    let stats = store.stats().unwrap();
    assert_eq!(stats.objects, UNITS.len());
    let verify = store.verify().unwrap();
    assert_eq!(verify.checked, UNITS.len());
    assert!(verify.corrupt.is_empty(), "{:?}", verify.corrupt);

    // No stray staging or lock files survive.
    let leftovers = |sub: &str| std::fs::read_dir(root.join(sub)).unwrap().count();
    assert_eq!(leftovers("tmp"), 0, "staging files leaked");
    assert_eq!(leftovers("locks"), 0, "lock files leaked");

    // A final cold session rides entirely on the contested store.
    let mut cold = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    let report = cold.build(&project()).unwrap();
    assert!(report.recompiled.is_empty(), "{:?}", report.recompiled);
    assert_eq!(report.store_hits.len(), UNITS.len());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn gc_during_use_never_serves_a_corrupt_or_stale_object() {
    let root = temp_store("gc");
    let store = Arc::new(Store::open(&root).unwrap());

    // Warm the store, then run builders and a capped GC concurrently.
    let mut warm = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    warm.build(&project()).unwrap();
    let reference = export_pids(&warm);

    std::thread::scope(|scope| {
        let gc_store = Arc::clone(&store);
        scope.spawn(move || {
            for _ in 0..5 {
                // Tight cap: evicts most of the store every sweep.
                gc_store
                    .gc(&GcConfig {
                        max_bytes: Some(256),
                        max_age: None,
                    })
                    .unwrap();
                std::thread::yield_now();
            }
        });
        for _ in 0..2 {
            let store = Arc::clone(&store);
            let reference = reference.clone();
            scope.spawn(move || {
                for _ in 0..3 {
                    let mut irm = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
                    irm.build(&project()).unwrap();
                    assert_eq!(export_pids(&irm), reference);
                }
            });
        }
    });

    // Whatever survived eviction is intact.
    let verify = store.verify().unwrap();
    assert!(verify.corrupt.is_empty(), "{:?}", verify.corrupt);
    std::fs::remove_dir_all(&root).ok();
}
