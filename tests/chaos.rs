//! Chaos suite: seeded fault plans driven through the whole pipeline.
//!
//! Every `store.*` fault point is exercised with torn writes and IO
//! errors under parallel keep-going builds, and the invariants the
//! store advertises must hold throughout: a build never fails because
//! the store is sick, no corrupt object is ever *served* (reads verify
//! digests and quarantine on mismatch), and after the faults stop a
//! `verify` + `gc` pass leaves the store provably clean.

use std::path::PathBuf;
use std::sync::Arc;

use smlsc::core::irm::{FailurePolicy, Irm, Project, Strategy};
use smlsc::core::store::{GcConfig, RetryPolicy, Store};
use smlsc::ids::Pid;
use smlsc_faults::{install_scoped, points, FaultKind, FaultPlan, FaultRule};

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-chaos-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn project() -> Project {
    let mut p = Project::new();
    p.add("base", "structure Base = struct val n = 10 end");
    for m in ["a", "b", "c", "d"] {
        p.add(
            format!("mid_{m}"),
            format!("structure Mid_{m} = struct val v = Base.n + 1 end"),
        );
    }
    p.add(
        "top",
        "structure Top = struct val s = Mid_a.v + Mid_b.v + Mid_c.v + Mid_d.v end",
    );
    p
}

const UNITS: [&str; 6] = ["base", "mid_a", "mid_b", "mid_c", "mid_d", "top"];

fn export_pids(irm: &Irm) -> Vec<(String, Pid)> {
    UNITS
        .iter()
        .map(|n| (n.to_string(), irm.bin(n).unwrap().unit.export_pid))
        .collect()
}

/// A fast retry policy so chaos runs don't spend wall-clock in backoff.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        base_delay: std::time::Duration::from_micros(200),
        deadline: std::time::Duration::from_millis(50),
    }
}

/// Torn writes and IO errors on every store fault point, at rates the
/// retry layer can sometimes — but not always — mask.
fn storm(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with(FaultRule::new(points::STORE_PUBLISH, FaultKind::Torn).percent(25))
        .with(FaultRule::new(points::STORE_PUBLISH, FaultKind::Io).percent(20))
        .with(FaultRule::new(points::STORE_FETCH, FaultKind::Io).percent(20))
        .with(FaultRule::new(points::STORE_FETCH, FaultKind::Torn).percent(20))
        .with(FaultRule::new(points::STORE_LOCK, FaultKind::Io).percent(10))
}

/// The acceptance scenario: for three fixed seeds, a parallel
/// keep-going build through a store under fault storm still succeeds
/// with correct results, a second builder reading the possibly-torn
/// store still gets correct results, and once the faults stop the
/// store verifies clean after GC.
#[test]
fn seeded_store_faults_leave_the_store_consistent() {
    // A fault-free reference build fixes the expected pids.
    let p = project();
    let mut reference = Irm::new(Strategy::Cutoff);
    reference.build(&p).unwrap();
    let want = export_pids(&reference);

    for seed in [11u64, 42, 1994] {
        let root = temp_store(&format!("storm-{seed}"));
        {
            let _guard = install_scoped(storm(seed));
            let mut store = Store::open(&root).unwrap();
            store.set_retry_policy(fast_retry());
            // High enough that a storm of transient faults does not
            // latch degraded mode mid-test; degradation has its own
            // test below.
            store.set_degrade_after(1000);
            let mut irm = Irm::with_store(Strategy::Cutoff, Arc::new(store));
            let report = irm
                .build_with(&p, 4, FailurePolicy::KeepGoing)
                .expect("store faults must never fail the build");
            assert!(report.succeeded(), "seed {seed}: {:?}", report.failed);
            assert_eq!(export_pids(&irm), want, "seed {seed}");

            // A second cold builder reads through the same faulty
            // store: any torn object it fetches must be caught by
            // digest verification (quarantined, recompiled), never
            // silently served.
            let mut store2 = Store::open(&root).unwrap();
            store2.set_retry_policy(fast_retry());
            store2.set_degrade_after(1000);
            let mut irm2 = Irm::with_store(Strategy::Cutoff, Arc::new(store2));
            let report2 = irm2.build_with(&p, 4, FailurePolicy::KeepGoing).unwrap();
            assert!(report2.succeeded(), "seed {seed}: {:?}", report2.failed);
            assert_eq!(export_pids(&irm2), want, "seed {seed}");
        }

        // Faults stopped: quarantine whatever the storm tore, purge it,
        // and the store must verify clean.
        let store = Store::open(&root).unwrap();
        store.verify().unwrap();
        store.gc(&GcConfig::default()).unwrap();
        let clean = store.verify().unwrap();
        assert!(
            clean.corrupt.is_empty(),
            "seed {seed}: store still corrupt after verify+gc: {:?}",
            clean.corrupt
        );

        // And the clean store still serves a full cold build.
        let mut irm3 = Irm::with_store(Strategy::Cutoff, Arc::new(store));
        irm3.build(&p).unwrap();
        assert_eq!(export_pids(&irm3), want, "seed {seed}");
        std::fs::remove_dir_all(&root).ok();
    }
}

/// A store whose every operation fails flips into degraded mode after
/// the configured number of consecutive failures; the build completes
/// correctly as if no store were configured.
#[test]
fn unreachable_store_degrades_instead_of_failing_the_build() {
    let root = temp_store("degrade");
    let _guard = install_scoped(
        FaultPlan::default()
            .with(FaultRule::new(points::STORE_FETCH, FaultKind::Io))
            .with(FaultRule::new(points::STORE_PUBLISH, FaultKind::Io)),
    );
    let mut store = Store::open(&root).unwrap();
    store.set_retry_policy(fast_retry());
    store.set_degrade_after(2);
    let store = Arc::new(store);
    let mut irm = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    let p = project();
    let report = irm.build_with(&p, 4, FailurePolicy::KeepGoing).unwrap();
    assert!(report.succeeded(), "{:?}", report.failed);
    assert!(store.is_degraded(), "persistent faults must latch degraded");

    // Degraded no-store mode still produces a correct build.
    let mut reference = Irm::new(Strategy::Cutoff);
    reference.build(&p).unwrap();
    assert_eq!(export_pids(&irm), export_pids(&reference));
    std::fs::remove_dir_all(&root).ok();
}

/// Torn legacy bin writes are caught on reload: the corrupt bin is
/// reported per-file, every healthy bin still loads, and the next build
/// recompiles exactly the units whose bins were lost.  (Torn *archive*
/// bodies are exercised in tests/warm_builds.rs — those are caught by
/// lazy digest verification instead.)
#[test]
fn torn_bin_save_is_tolerated_per_file_on_reload() {
    let dir = temp_store("tornbin");
    let mut p = Project::new();
    p.add("chbase", "structure Chbase = struct val n = 1 end");
    p.add(
        "chvictim",
        "structure Chvictim = struct val v = Chbase.n end",
    );
    p.add("chtop", "structure Chtop = struct val t = Chvictim.v end");

    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    {
        let _guard = install_scoped(
            FaultPlan::default()
                .with(FaultRule::new(points::BIN_SAVE, FaultKind::Torn).filtered("chvictim")),
        );
        irm.save_bins_files(&dir).unwrap();
    }

    let mut irm2 = Irm::new(Strategy::Cutoff);
    let outcome = irm2.load_bins(&dir).unwrap();
    assert_eq!(outcome.loaded, 2, "healthy bins load");
    assert_eq!(outcome.corrupt.len(), 1, "the torn bin is reported");

    let report = irm2.build(&p).unwrap();
    assert!(report.was_recompiled("chvictim"));
    assert!(!report.was_recompiled("chbase"));
    std::fs::remove_dir_all(&dir).ok();
}

/// An injected IO error while saving one bin surfaces as a typed
/// `BinIo` error naming both the unit and the path.
#[test]
fn bin_save_io_failure_is_a_typed_error() {
    let dir = temp_store("binio");
    let mut p = Project::new();
    p.add("chiofail", "structure Chiofail = struct val n = 1 end");
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();

    let _guard = install_scoped(
        FaultPlan::default()
            .with(FaultRule::new(points::BIN_SAVE, FaultKind::Io).filtered("chiofail")),
    );
    let err = irm.save_bins(&dir).unwrap_err();
    assert!(err.is_io(), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("chiofail"), "{msg}");
    assert!(msg.contains("bin file"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Torn *reads* from the store are caught by digest verification and
/// quarantined rather than decoded into a bogus unit.
#[test]
fn torn_store_reads_quarantine_not_serve() {
    let root = temp_store("tornread");
    let p = project();
    let want = {
        let mut reference = Irm::new(Strategy::Cutoff);
        reference.build(&p).unwrap();
        export_pids(&reference)
    };

    // Publish cleanly first.
    {
        let mut irm = Irm::with_store(Strategy::Cutoff, Arc::new(Store::open(&root).unwrap()));
        irm.build(&p).unwrap();
    }
    // Then read through a store whose every fetch is torn mid-payload.
    {
        let _guard = install_scoped(
            FaultPlan::default().with(FaultRule::new(points::STORE_FETCH, FaultKind::Torn)),
        );
        let mut store = Store::open(&root).unwrap();
        store.set_retry_policy(fast_retry());
        store.set_degrade_after(1000);
        let mut irm = Irm::with_store(Strategy::Cutoff, Arc::new(store));
        let report = irm.build_with(&p, 2, FailurePolicy::KeepGoing).unwrap();
        assert!(report.succeeded(), "{:?}", report.failed);
        assert_eq!(
            export_pids(&irm),
            want,
            "torn reads must never corrupt results"
        );
        // Nothing can be served from a store whose reads always tear.
        assert!(report.store_hits.is_empty(), "{:?}", report.store_hits);
    }
    std::fs::remove_dir_all(&root).ok();
}
