//! Churn replay: seeded multi-edit histories over the Monorepo
//! topology, asserting the recompile set is exactly the set of edited
//! units (cutoff stops the cascade at unchanged interfaces) and the
//! scheduled dirty cone is exactly the union of the edited units'
//! dependent cones — in the sequential build, the parallel build, and
//! the resident (daemon) session alike.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use smlsc_core::irm::{FailurePolicy, Irm, Project, Strategy};
use smlsc_core::resident::Resident;
use smlsc_core::trace;
use smlsc_workload::{module_name, EditKind, Topology, Workload, WorkloadSpec};

static NEXT: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smlsc-churn-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic xorshift so a failing history can be replayed from its
/// seed alone.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn write_module(src: &Path, w: &Workload, i: usize) {
    let name = module_name(i);
    let text = w.project().file(&name).unwrap().read_text().unwrap();
    std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
}

/// One cold-process session: load caches, build with `jobs` workers,
/// persist caches.  Returns the decision sequence (unit, decision kind),
/// the set of recompiled units, and the scheduled dirty-cone size.
fn cold_step(
    bin: &Path,
    src: &Path,
    jobs: usize,
) -> (Vec<(String, &'static str)>, BTreeSet<String>, u64) {
    let collector = trace::Collector::new();
    collector.install();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.load_stamps(&bin.join("stamps.json"));
    if bin.is_dir() {
        let outcome = irm.load_bins(bin).unwrap();
        assert!(outcome.corrupt.is_empty(), "{:?}", outcome.corrupt);
    }
    let project = Project::from_dir(src).unwrap();
    let report = irm
        .build_with(&project, jobs, FailurePolicy::FailFast)
        .unwrap();
    irm.save_bins(bin).unwrap();
    irm.save_stamps(&bin.join("stamps.json")).unwrap();
    trace::uninstall();
    let decisions = report
        .decisions
        .iter()
        .map(|(s, d)| (s.to_string(), d.kind()))
        .collect();
    let recompiled = report.recompiled.iter().map(|s| s.to_string()).collect();
    (
        decisions,
        recompiled,
        collector.counter(trace::names::SCHED_DIRTY_CONE),
    )
}

/// The union of the edited units' cones: each edited unit plus every
/// transitive dependent, computed independently from the workload's own
/// dependency lists.
fn union_of_cones(w: &Workload, edited: &BTreeSet<usize>) -> BTreeSet<usize> {
    let mut cone = edited.clone();
    for &v in edited {
        cone.extend(w.transitive_dependents(v));
    }
    cone
}

#[test]
fn seeded_churn_recompiles_exactly_the_union_of_edited_cones() {
    let units = 120;
    for seed in [3u64, 17] {
        let mut w = Workload::new(WorkloadSpec::with_topology(Topology::Monorepo {
            units,
            seed,
        }));
        let base = temp_dir(&format!("replay-{seed}"));
        let src = base.join("src");
        std::fs::create_dir_all(&src).unwrap();
        for i in 0..units {
            write_module(&src, &w, i);
        }
        let seq_bin = base.join("seq");
        let par_bin = base.join("par");
        let dmn_bin = base.join("dmn");

        // Cold builds bring all three modes to the same warm state.
        let (_, seq_cold, _) = cold_step(&seq_bin, &src, 1);
        let (_, par_cold, _) = cold_step(&par_bin, &src, 4);
        assert_eq!(seq_cold.len(), units);
        assert_eq!(par_cold.len(), units);
        let resident = Resident::open(&src, &dmn_bin, Strategy::Cutoff, None).unwrap();
        let (snap, _) = resident.build(4, FailurePolicy::FailFast, true).unwrap();
        assert_eq!(snap.recompiled, units);

        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for round in 0..4 {
            // 1..=3 distinct victims, body-only edits: interfaces stay
            // fixed, so cutoff confines recompiles to the victims while
            // the scheduler still walks their full dependent cones.
            let k = 1 + (next(&mut rng) as usize) % 3;
            let mut victims = BTreeSet::new();
            while victims.len() < k {
                victims.insert((next(&mut rng) as usize) % units);
            }
            for &v in &victims {
                w.edit(v, EditKind::BodyOnly);
                write_module(&src, &w, v);
            }
            let expected: BTreeSet<String> = victims.iter().map(|&v| module_name(v)).collect();
            let cone = union_of_cones(&w, &victims);
            let ctx = format!("seed {seed} round {round} victims {victims:?}");

            let (seq_dec, seq_rec, seq_cone) = cold_step(&seq_bin, &src, 1);
            let (par_dec, par_rec, par_cone) = cold_step(&par_bin, &src, 4);
            assert_eq!(seq_rec, expected, "{ctx}: sequential recompile set");
            assert_eq!(par_rec, expected, "{ctx}: parallel recompile set");
            assert_eq!(par_dec, seq_dec, "{ctx}: parallel ≡ sequential decisions");
            assert_eq!(seq_cone, cone.len() as u64, "{ctx}: sequential cone");
            assert_eq!(par_cone, cone.len() as u64, "{ctx}: parallel cone");

            let (snap, cached) = resident.build(4, FailurePolicy::FailFast, true).unwrap();
            assert!(!cached, "{ctx}: edits must invalidate the snapshot");
            assert_eq!(snap.recompiled, expected.len(), "{ctx}: daemon recompiles");
            assert_eq!(snap.reused, units - expected.len(), "{ctx}: daemon reuses");
            assert!(
                snap.stats_json
                    .contains(&format!("\"sched.dirty_cone\":{}", cone.len())),
                "{ctx}: daemon cone, stats {}",
                snap.stats_json
            );
        }

        // A final no-op round: every mode reuses everything and the
        // dirty cone is empty.
        let (_, seq_rec, seq_cone) = cold_step(&seq_bin, &src, 1);
        let (_, par_rec, par_cone) = cold_step(&par_bin, &src, 4);
        assert!(seq_rec.is_empty(), "seed {seed}: sequential no-op");
        assert!(par_rec.is_empty(), "seed {seed}: parallel no-op");
        assert_eq!((seq_cone, par_cone), (0, 0), "seed {seed}: empty cones");
        let (snap, cached) = resident.build(4, FailurePolicy::FailFast, true).unwrap();
        assert!(cached || snap.recompiled == 0, "seed {seed}: daemon no-op");
        std::fs::remove_dir_all(&base).ok();
    }
}

/// Interface-widening churn: the recompile set grows to the edited
/// units plus their *direct* importers (whose import pids change),
/// while cutoff still stops the cascade where interfaces are unchanged
/// — and sequential ≡ parallel holds throughout.
#[test]
fn interface_churn_recompiles_direct_importers_and_agrees_across_modes() {
    let units = 80;
    let seed = 29u64;
    let mut w = Workload::new(WorkloadSpec::with_topology(Topology::Monorepo {
        units,
        seed,
    }));
    let base = temp_dir("replay-iface");
    let src = base.join("src");
    std::fs::create_dir_all(&src).unwrap();
    for i in 0..units {
        write_module(&src, &w, i);
    }
    let seq_bin = base.join("seq");
    let par_bin = base.join("par");
    cold_step(&seq_bin, &src, 1);
    cold_step(&par_bin, &src, 4);

    let mut rng = seed | 1;
    for round in 0..3 {
        let victim = (next(&mut rng) as usize) % units;
        w.edit(victim, EditKind::InterfaceAdd);
        write_module(&src, &w, victim);
        let cone = union_of_cones(&w, &BTreeSet::from([victim]));
        let ctx = format!("round {round} victim {victim}");

        let (seq_dec, seq_rec, seq_cone) = cold_step(&seq_bin, &src, 1);
        let (par_dec, par_rec, par_cone) = cold_step(&par_bin, &src, 4);
        assert_eq!(par_dec, seq_dec, "{ctx}: parallel ≡ sequential decisions");
        assert_eq!(par_rec, seq_rec, "{ctx}: recompile sets agree");
        assert_eq!(
            seq_cone,
            cone.len() as u64,
            "{ctx}: cone is the full closure"
        );
        assert_eq!(par_cone, cone.len() as u64, "{ctx}");

        // Exactly the victim and its direct importers recompile: the
        // new export widens the victim's interface (importers see a new
        // import pid), but importers' own exports are unchanged, so
        // their dependents cut off.
        let direct: BTreeSet<String> = std::iter::once(victim)
            .chain((0..units).filter(|&j| w.deps()[j].contains(&victim)))
            .map(module_name)
            .collect();
        assert_eq!(seq_rec, direct, "{ctx}: victim + direct importers");
    }
    std::fs::remove_dir_all(&base).ok();
}
