//! N concurrent daemon clients against one in-process server: builds
//! must serialize (the bin and stamp caches are single-writer), every
//! report must be a consistent snapshot, and no client may ever see
//! interleaved socket frames (alongside `store_concurrency.rs`, which
//! stresses the artifact store the same way).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use smlsc_daemon::{client, Request, ServerConfig, ServerHandle};

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-dconc-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const UNITS: usize = 12;

/// A diamond-ish DAG: one base, a fan of mids, one top importing all.
fn write_project(dir: &Path) {
    std::fs::write(
        dir.join("base.sml"),
        "structure Base = struct val n = 10 end",
    )
    .unwrap();
    let mut top = String::from("structure Top = struct val s = Base.n");
    for i in 0..UNITS - 2 {
        std::fs::write(
            dir.join(format!("mid_{i:02}.sml")),
            format!("structure Mid_{i:02} = struct val v = Base.n + {i} end"),
        )
        .unwrap();
        top.push_str(&format!(" + Mid_{i:02}.v"));
    }
    top.push_str(" end");
    std::fs::write(dir.join("top.sml"), top).unwrap();
}

/// Deterministic "seeded randomness": a splitmix64 stream per client.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[test]
fn concurrent_clients_get_serialized_builds_and_consistent_snapshots() {
    let root = temp("stress");
    let src = root.join("src");
    std::fs::create_dir_all(&src).unwrap();
    write_project(&src);
    let bin_dir = root.join("bins");
    let mut config = ServerConfig::new(&src, &bin_dir);
    // No watcher interference: nothing edits the project mid-test.
    config.watch_interval = Duration::from_secs(3600);
    config.jobs = 2;
    let server = ServerHandle::spawn(config).unwrap();
    let socket = server.socket_path().to_path_buf();

    // Prime one build so `stats` requests always have a snapshot.
    let primed = client::request(&socket, &Request::build(true)).unwrap();
    assert!(primed.ok, "{}", primed.error);

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 12;
    let per_client: Vec<Vec<smlsc_daemon::Response>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let mut rng = Rng(1994 + c as u64);
                    let mut responses = Vec::new();
                    for _ in 0..REQUESTS {
                        // A seeded mix of request kinds, so builds
                        // overlap with stats and status reads.
                        let request = match rng.next() % 4 {
                            0 => Request::build(true),
                            1 => Request::build(false),
                            2 => Request::simple("status"),
                            _ => Request::simple("stats"),
                        };
                        // `recv` parses a whole frame: an interleaved or
                        // torn frame fails here, not silently.
                        let response = client::request(&socket, &request)
                            .expect("daemon answers every client");
                        responses.push(response);
                    }
                    responses
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Snapshot consistency: every build response with the same sequence
    // number must carry the identical report, no matter which client
    // received it or what was in flight at the time.
    let mut by_seq: HashMap<u64, (String, i32)> = HashMap::new();
    let mut builds = 0;
    for response in per_client.iter().flatten() {
        assert!(response.ok, "request refused: {}", response.error);
        if response.summary.is_empty() {
            continue; // status responses carry no report
        }
        builds += 1;
        assert_eq!(response.exit_code, 0, "{}", response.summary);
        assert!(
            response
                .summary
                .starts_with(&format!("built {UNITS} unit(s)")),
            "{}",
            response.summary
        );
        let entry = (response.summary.clone(), response.exit_code);
        if let Some(seen) = by_seq.insert(response.seq, entry.clone()) {
            assert_eq!(seen, entry, "two reports for build #{}", response.seq);
        }
    }
    assert!(builds > 0, "the seeded mix must include builds");

    // The single-writer invariant, as observed by the server itself:
    // however many clients raced, at most one build ever executed.
    let status = client::request(&socket, &Request::simple("status")).unwrap();
    assert!(
        status.status_json.contains("\"building_high_water\":1"),
        "builds must serialize: {}",
        status.status_json
    );
    server.stop().unwrap();
    assert!(!socket.exists(), "stop removes the socket");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn a_second_daemon_for_the_same_project_is_refused() {
    let root = temp("second");
    let src = root.join("src");
    std::fs::create_dir_all(&src).unwrap();
    write_project(&src);
    let bin_dir = root.join("bins");
    let server = ServerHandle::spawn(ServerConfig::new(&src, &bin_dir)).unwrap();
    let err = ServerHandle::spawn(ServerConfig::new(&src, &bin_dir)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    server.stop().unwrap();
    // With the first daemon gone, the project is free again.
    let server = ServerHandle::spawn(ServerConfig::new(&src, &bin_dir)).unwrap();
    server.stop().unwrap();
    std::fs::remove_dir_all(&root).ok();
}
