//! §9 groups/libraries exercised end to end: a filtered library shared by
//! two application groups, built incrementally with cutoff.

use smlsc::core::groups::{Group, GroupedProject};
use smlsc::core::irm::{Irm, Strategy};
use smlsc::ids::Symbol;

fn project() -> GroupedProject {
    GroupedProject::new()
        .group(
            Group::new("mathlib")
                .file(
                    "arith",
                    "structure Arith = struct
                       fun pow (b, 0) = 1
                         | pow (b, n) = b * pow (b, n - 1)
                     end",
                )
                .file(
                    "arith_internal",
                    "structure ArithTables = struct val magic = 17 end",
                )
                .exporting(&["Arith"]),
        )
        .group(Group::new("render").uses("mathlib").file(
            "scale",
            "structure Scale = struct fun area s = Arith.pow (s, 2) end",
        ))
        .group(Group::new("physics").uses("mathlib").file(
            "energy",
            "structure Energy = struct fun cube v = Arith.pow (v, 3) end",
        ))
}

#[test]
fn grouped_project_builds_and_executes() {
    let flat = project().lower().expect("visibility holds");
    let mut irm = Irm::new(Strategy::Cutoff);
    let (report, env) = irm.execute(&flat).unwrap();
    assert_eq!(report.recompiled.len(), 4);
    let scale = env.get(Symbol::intern("scale")).unwrap();
    let smlsc::dynamics::value::Value::Record(units) = &scale.values else {
        panic!()
    };
    let smlsc::dynamics::value::Value::Record(fields) = &units[0] else {
        panic!()
    };
    // Closures only (area) — verify presence rather than value.
    assert_eq!(fields.len(), 1);
}

#[test]
fn grouped_rebuilds_cut_off_across_group_boundaries() {
    let flat = project().lower().unwrap();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&flat).unwrap();
    // Body edit inside the library: clients in both groups are cut off.
    let mut edited = flat.clone();
    edited
        .edit(
            "arith",
            "structure Arith = struct
               fun pow (b, 0) = 1
                 | pow (b, n) = if n mod 2 = 0 then pow (b * b, n div 2)
                                else b * pow (b, n - 1)
             end",
        )
        .unwrap();
    let report = irm.build(&edited).unwrap();
    assert_eq!(
        report.recompiled,
        vec![Symbol::intern("arith")],
        "fast-exponentiation rewrite is interface-preserving"
    );
}

#[test]
fn library_filter_blocks_clients_but_not_members() {
    // A client group reaching for the unexported table module fails at
    // validation with a message naming the library.
    let bad = GroupedProject::new()
        .group(
            Group::new("mathlib")
                .file("arith", "structure Arith = struct val one = 1 end")
                .file(
                    "arith_internal",
                    "structure ArithTables = struct val magic = 17 end",
                )
                .exporting(&["Arith"]),
        )
        .group(Group::new("render").uses("mathlib").file(
            "scale",
            "structure Scale = struct val m = ArithTables.magic end",
        ));
    let err = bad.lower().unwrap_err().to_string();
    assert!(err.contains("mathlib"), "{err}");
    assert!(err.contains("does not export"), "{err}");
}
