//! Telemetry integrity under failure: a worker panicking mid-span must
//! not lose or corrupt the parent [`Collector`]'s data, and the Chrome
//! trace exported afterwards must still be well-formed and balanced.
//!
//! The collector is installed on the main thread and *forked* onto
//! every wavefront worker; these tests drive a panic through a forked
//! sink (via the deterministic `compile.unit=panic` fault point) and
//! assert the shared store behind the forks survives intact.

use serde::Value;
use smlsc::core::irm::{FailurePolicy, Irm, Project, Strategy};
use smlsc::core::trace::{self, names};
use smlsc_faults::{install_scoped, points, FaultKind, FaultPlan, FaultRule};

/// A diamond: one base, four mids, one top over all mids.
fn project() -> Project {
    let mut p = Project::new();
    p.add("base", "structure Base = struct val n = 10 end");
    for m in ["a", "b", "c", "d"] {
        p.add(
            format!("mid_{m}"),
            format!("structure Mid_{m} = struct val v = Base.n + 1 end"),
        );
    }
    p.add(
        "top",
        "structure Top = struct val s = Mid_a.v + Mid_b.v + Mid_c.v + Mid_d.v end",
    );
    p
}

#[test]
fn worker_panic_mid_span_keeps_the_parent_collector_consistent() {
    let p = project();
    let collector = trace::Collector::new();
    collector.install();
    let report = {
        let _guard = install_scoped(
            FaultPlan::default()
                .with(FaultRule::new(points::COMPILE_UNIT, FaultKind::Panic).filtered("mid_b")),
        );
        let mut irm = Irm::new(Strategy::Cutoff);
        irm.build_with(&p, 4, FailurePolicy::KeepGoing)
            .expect("keep-going survives a unit panic")
    };
    trace::uninstall();

    // The panic was confined to its unit: the other four compiled.
    assert!(report.failed.iter().any(|(u, _)| u.as_str() == "mid_b"));
    assert!(report.skipped.iter().any(|u| u.as_str() == "top"));
    assert_eq!(collector.counter(names::UNITS_COMPILED), 4);
    assert_eq!(collector.counter(names::UNITS_FAILED), 1);

    // Healthy workers' spans all reached the parent store through their
    // forked sinks, and the panicking unit's own span was completed by
    // unwinding — nothing is lost, nothing dangles.
    let spans = collector.spans();
    let parse_units: Vec<&str> = spans
        .iter()
        .filter(|s| s.name == names::SPAN_PARSE)
        .filter_map(|s| s.fields.iter().find(|(k, _)| k == "unit"))
        .map(|(_, v)| v.as_str())
        .collect();
    for unit in ["base", "mid_a", "mid_c", "mid_d"] {
        assert!(parse_units.contains(&unit), "missing parse span: {unit}");
    }
    let task_units: Vec<&str> = spans
        .iter()
        .filter(|s| s.name == names::SPAN_TASK)
        .filter_map(|s| s.fields.iter().find(|(k, _)| k == "unit"))
        .map(|(_, v)| v.as_str())
        .collect();
    assert!(
        task_units.contains(&"mid_b"),
        "the panicking unit's task span must be closed by unwinding, got {task_units:?}"
    );
    assert!(
        collector
            .events()
            .iter()
            .any(|e| e.name == names::UNIT_PANIC_EVENT
                && e.fields.iter().any(|(k, v)| k == "unit" && v == "mid_b")),
        "the panic must be recorded as an event"
    );
}

#[test]
fn chrome_trace_after_a_worker_panic_is_well_formed_and_balanced() {
    let p = project();
    let collector = trace::Collector::new();
    collector.install();
    {
        let _guard = install_scoped(
            FaultPlan::default()
                .with(FaultRule::new(points::COMPILE_UNIT, FaultKind::Panic).filtered("mid_c")),
        );
        let mut irm = Irm::new(Strategy::Cutoff);
        irm.build_with(&p, 4, FailurePolicy::KeepGoing)
            .expect("keep-going survives a unit panic");
    }
    trace::uninstall();

    let json = collector.chrome_trace_json();
    let value = serde_json::parse_value(json.as_bytes()).expect("trace must parse as JSON");
    let Value::Seq(entries) = value else {
        panic!("chrome trace must be a JSON array");
    };
    // Every span serializes as one self-balanced `ph:"X"` complete
    // event (begin + duration), every event as `ph:"i"` — so the
    // begin/end bookkeeping balances exactly when the entry counts
    // match the collector's.
    let mut complete = 0usize;
    let mut instants = 0usize;
    for entry in &entries {
        let Value::Map(fields) = entry else {
            panic!("trace entries must be objects");
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        match get("ph") {
            Some(Value::Str(ph)) if ph == "X" => {
                complete += 1;
                assert!(matches!(get("ts"), Some(Value::UInt(_))), "X needs ts");
                assert!(matches!(get("dur"), Some(Value::UInt(_))), "X needs dur");
            }
            Some(Value::Str(ph)) if ph == "i" => instants += 1,
            other => panic!("unexpected ph: {other:?}"),
        }
        assert!(
            matches!(get("name"), Some(Value::Str(_))),
            "entries are named"
        );
    }
    assert_eq!(complete, collector.spans().len(), "one X per span");
    assert_eq!(instants, collector.events().len(), "one i per event");
    assert!(complete > 0 && instants > 0, "the trace is not empty");

    // The exporter is deterministic: serializing again is byte-identical.
    assert_eq!(json, collector.chrome_trace_json());
}
