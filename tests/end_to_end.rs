//! Whole-system integration: a project evolving over many builds, with
//! the invariant that incremental (cutoff) building is observationally
//! equivalent to building from scratch.

use smlsc::core::irm::{Irm, Project, Strategy};
use smlsc::core::DynEnv;
use smlsc::dynamics::value::Value;
use smlsc::ids::Symbol;

/// Renders every unit's export record, for cross-build comparison.
fn snapshot(env: &DynEnv, units: &[&str]) -> Vec<String> {
    units
        .iter()
        .map(|u| {
            let linked = env.get(Symbol::intern(u)).expect("linked");
            format!("{u}: {}", render(&linked.values))
        })
        .collect()
}

fn render(v: &Value) -> String {
    match v {
        Value::Record(fields) => {
            let inner: Vec<String> = fields.iter().map(render).collect();
            format!("{{{}}}", inner.join(", "))
        }
        other => other.to_string(),
    }
}

fn assert_equivalent_to_clean_build(irm: &mut Irm, p: &Project, units: &[&str]) {
    let (_, incremental) = irm.execute(p).expect("incremental build");
    let mut fresh = Irm::new(Strategy::Cutoff);
    let (_, clean) = fresh.execute(p).expect("clean build");
    assert_eq!(
        snapshot(&incremental, units),
        snapshot(&clean, units),
        "incremental and clean builds must agree"
    );
}

#[test]
fn long_lived_project_evolution() {
    let units = ["geometry", "shapes", "report"];
    let mut p = Project::new();
    p.add(
        "geometry",
        "structure Geometry = struct
           fun abs x = if x < 0 then ~x else x
           fun max (a, b) = if a > b then a else b
           fun area (w, h) = abs w * abs h
         end",
    );
    p.add(
        "shapes",
        "signature SHAPE = sig
           type t
           val make : int * int -> t
           val size : t -> int
         end
         structure Rect :> SHAPE = struct
           type t = int * int
           fun make (w, h) = (w, h)
           fun size (w, h) = Geometry.area (w, h)
         end",
    );
    p.add(
        "report",
        "structure Report = struct
           val shapes = [Rect.make (2, 3), Rect.make (4, 5), Rect.make (1, 10)]
           fun total [] = 0
             | total (s :: ss) = Rect.size s + total ss
           val sum = total shapes
           val biggest = Geometry.max (Rect.size (Rect.make (9, 9)), sum)
         end",
    );

    let mut irm = Irm::new(Strategy::Cutoff);
    let (report, env) = irm.execute(&p).unwrap();
    assert_eq!(report.recompiled.len(), 3);
    // sum = 6 + 20 + 10 = 36; biggest = max(81, 36) = 81.
    let rep = env.get(Symbol::intern("report")).unwrap();
    let Value::Record(top) = &rep.values else {
        panic!()
    };
    let Value::Record(fields) = &top[0] else {
        panic!()
    };
    // slots: shapes(0), total(1, a closure), sum(2), biggest(3)
    assert_eq!(fields[2], Value::Int(36));
    assert_eq!(fields[3], Value::Int(81));

    // Evolution 1: optimize geometry's body.
    p.edit(
        "geometry",
        "structure Geometry = struct
           fun abs x = if x < 0 then 0 - x else x
           fun max (a, b) = if a > b then a else b
           fun area (w, h) = abs (w * h)
         end",
    )
    .unwrap();
    let rep1 = irm.build(&p).unwrap();
    assert_eq!(rep1.recompiled.len(), 1, "{:?}", rep1.recompiled);
    assert_equivalent_to_clean_build(&mut irm, &p, &units);

    // Evolution 2: widen shapes' interface (new exported function).
    p.edit(
        "shapes",
        "signature SHAPE = sig
           type t
           val make : int * int -> t
           val size : t -> int
           val double : t -> t
         end
         structure Rect :> SHAPE = struct
           type t = int * int
           fun make (w, h) = (w, h)
           fun size (w, h) = Geometry.area (w, h)
           fun double (w, h) = (w * 2, h)
         end",
    )
    .unwrap();
    let rep2 = irm.build(&p).unwrap();
    // shapes changed interface; report uses it, so both recompile.
    assert!(rep2.was_recompiled("shapes"));
    assert!(rep2.was_recompiled("report"));
    assert!(!rep2.was_recompiled("geometry"));
    assert_equivalent_to_clean_build(&mut irm, &p, &units);

    // Evolution 3: report starts using the new capability.
    p.edit(
        "report",
        "structure Report = struct
           val shapes = [Rect.double (Rect.make (2, 3)), Rect.make (4, 5)]
           fun total [] = 0
             | total (s :: ss) = Rect.size s + total ss
           val sum = total shapes
           val biggest = Geometry.max (sum, 0)
         end",
    )
    .unwrap();
    let rep3 = irm.build(&p).unwrap();
    assert_eq!(rep3.recompiled.len(), 1);
    let (_, env) = irm.execute(&p).unwrap();
    let rep = env.get(Symbol::intern("report")).unwrap();
    let Value::Record(top) = &rep.values else {
        panic!()
    };
    let Value::Record(fields) = &top[0] else {
        panic!()
    };
    // sum = (4*3) + (4*5) = 32; slot layout as above
    assert_eq!(fields[2], Value::Int(32));
}

#[test]
fn adding_and_removing_units_mid_project() {
    let mut p = Project::new();
    p.add("a", "structure A = struct val x = 1 end");
    p.add("b", "structure B = struct val y = A.x + 1 end");
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();

    // A new unit slots in without rebuilding the others.
    p.add("c", "structure C = struct val z = B.y * A.x end");
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled, vec![Symbol::intern("c")]);
    let (_, env) = irm.execute(&p).unwrap();
    assert_eq!(env.len(), 3);
}

#[test]
fn opaque_library_boundary_survives_rebuilds() {
    // An opaque key type: clients cannot forge it, and this stays true
    // across cached rebuilds (the rehydrated abstract tycon keeps its
    // identity and its opacity).
    let mut p = Project::new();
    p.add(
        "keys",
        "structure Key :> sig
           type key
           val make : int -> key
           val value : key -> int
         end = struct
           type key = int
           fun make n = n * 2
           fun value k = k div 2
         end",
    );
    p.add(
        "user",
        "structure User = struct val v = Key.value (Key.make 21) end",
    );
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.execute(&p).unwrap();

    // A client trying to treat key as int must fail even when keys comes
    // from a cached bin.
    p.add(
        "evil",
        "structure Evil = struct val forged = Key.make 1 + 1 end",
    );
    let err = irm.build(&p).unwrap_err();
    assert!(err.to_string().contains("unify"), "{err}");

    // Remove the offender (simulate deleting the file) and keep going.
    let mut p2 = Project::new();
    p2.add(
        "keys",
        "structure Key :> sig
           type key
           val make : int -> key
           val value : key -> int
         end = struct
           type key = int
           fun make n = n * 2
           fun value k = k div 2
         end",
    );
    p2.add(
        "user",
        "structure User = struct val v = Key.value (Key.make 21) end",
    );
    // keys/user unchanged: reuse both bins (note: same sources).
    let report = irm.build(&p2).unwrap();
    assert!(report.recompiled.is_empty(), "{:?}", report.recompiled);
}

#[test]
fn deep_chain_executes_correctly_after_partial_rebuilds() {
    let n = 20;
    let mut p = Project::new();
    p.add("M0", "structure M0 = struct fun step x = x + 1 end");
    for i in 1..n {
        p.add(
            format!("M{i}"),
            format!(
                "structure M{i} = struct fun step x = M{}.step x + 1 end",
                i - 1
            ),
        );
    }
    p.add(
        "top",
        format!("structure Top = struct val out = M{}.step 0 end", n - 1),
    );
    let mut irm = Irm::new(Strategy::Cutoff);
    let (_, env) = irm.execute(&p).unwrap();
    let top = env.get(Symbol::intern("top")).unwrap();
    let Value::Record(units) = &top.values else {
        panic!()
    };
    let Value::Record(fields) = &units[0] else {
        panic!()
    };
    assert_eq!(fields[0], Value::Int(n as i64));

    // Change the middle of the chain (body only) and re-execute.
    p.edit(
        "M10",
        "structure M10 = struct fun step x = M9.step x + 2 end",
    )
    .unwrap();
    let (report, env) = irm.execute(&p).unwrap();
    assert_eq!(report.recompiled.len(), 1);
    let top = env.get(Symbol::intern("top")).unwrap();
    let Value::Record(units) = &top.values else {
        panic!()
    };
    let Value::Record(fields) = &units[0] else {
        panic!()
    };
    assert_eq!(fields[0], Value::Int(n as i64 + 1));
}
