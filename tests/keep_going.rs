//! Keep-going scheduling: sequential/parallel equivalence and panic
//! isolation.
//!
//! Under `FailurePolicy::KeepGoing` a unit failure must fail exactly
//! that unit, skip exactly its transitive dependents, and leave every
//! independent unit compiled — and the parallel wavefront must agree
//! with the sequential loop on all of it: the same failed set, the same
//! skipped set (with the same `blocked_on` explanations), the same
//! outcomes in the same order, and bit-identical export pids for every
//! unit that built.

use std::collections::HashSet;

use proptest::prelude::*;
use proptest::strategy::Strategy as Strategy2;
use smlsc::core::irm::{FailurePolicy, Irm, Project, Strategy as BuildStrategy, UnitOutcome};
use smlsc::core::BuildReport;
use smlsc::workload::{module_name, Topology, Workload, WorkloadSpec};
use smlsc_faults::{install_scoped, points, FaultKind, FaultPlan, FaultRule};

fn arb_topology() -> impl Strategy2<Value = Topology> {
    prop_oneof![
        (2usize..10).prop_map(|n| Topology::Chain { n }),
        (1usize..3, 2usize..4).prop_map(|(depth, branching)| Topology::Tree { depth, branching }),
        (2usize..6, 1usize..4).prop_map(|(width, depth)| Topology::Diamond { width, depth }),
        (2usize..6, 0usize..8, any::<u64>()).prop_map(|(lib, clients, seed)| Topology::Library {
            lib,
            clients,
            seed
        }),
    ]
}

/// A project over the given dependency lists where each unit in
/// `broken` fails *elaboration* (a type error), not import analysis —
/// the unit still syntactically exports its structure, so the graph is
/// intact and the failure is local to the unit.
fn make_project(deps: &[Vec<usize>], broken: &HashSet<usize>) -> Project {
    let mut p = Project::new();
    for (i, ds) in deps.iter().enumerate() {
        let imports: String = ds.iter().map(|d| format!(" + M{d}.v{d}")).collect();
        let bad = if broken.contains(&i) {
            r#" val bad = 1 + "x""#
        } else {
            ""
        };
        p.add(
            module_name(i),
            format!("structure M{i} = struct{bad} val v{i} = 1{imports} end"),
        );
    }
    p
}

fn failed_names(r: &BuildReport) -> Vec<String> {
    r.failed.iter().map(|(u, _)| u.to_string()).collect()
}

/// The failed/skipped sets a keep-going build must produce, computed
/// structurally: walking the build order, a unit is skipped when any
/// direct import already failed or was skipped, failed when broken,
/// and built otherwise.
fn expected_sets(
    order: &[smlsc::ids::Symbol],
    deps: &[Vec<usize>],
    broken: &HashSet<usize>,
) -> (HashSet<String>, HashSet<String>) {
    let mut failed = HashSet::new();
    let mut skipped = HashSet::new();
    for name in order {
        let i: usize = name.as_str()[1..].parse().unwrap();
        let blocked = deps[i].iter().any(|d| {
            let dn = module_name(*d);
            failed.contains(&dn) || skipped.contains(&dn)
        });
        if blocked {
            skipped.insert(name.to_string());
        } else if broken.contains(&i) {
            failed.insert(name.to_string());
        }
    }
    (failed, skipped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Over random topologies and random broken-unit sets, the parallel
    /// keep-going build is observationally identical to the sequential
    /// one, and both match the structural prediction of which units
    /// fail, which are skipped, and which build.
    #[test]
    fn keep_going_parallel_matches_sequential(
        topo in arb_topology(),
        broken_sel in proptest::collection::vec(any::<u16>(), 1..4),
        jobs in 2usize..9,
    ) {
        let w = Workload::new(WorkloadSpec::with_topology(topo));
        let n = w.module_count();
        let broken: HashSet<usize> = broken_sel.iter().map(|v| *v as usize % n).collect();
        let p = make_project(w.deps(), &broken);

        let mut seq = Irm::new(BuildStrategy::Cutoff);
        let mut par = Irm::new(BuildStrategy::Cutoff);
        let r1 = seq.build_with(&p, 1, FailurePolicy::KeepGoing).unwrap();
        let r2 = par.build_with(&p, jobs, FailurePolicy::KeepGoing).unwrap();

        // Identical reports: order, outcomes (including Failed error
        // text and Skipped blocked_on lists), decisions, and the
        // recompiled/reused/failed/skipped partitions.
        prop_assert_eq!(&r1.order, &r2.order);
        prop_assert_eq!(&r1.outcomes, &r2.outcomes);
        prop_assert_eq!(&r1.decisions, &r2.decisions);
        prop_assert_eq!(&r1.recompiled, &r2.recompiled);
        prop_assert_eq!(&r1.reused, &r2.reused);
        prop_assert_eq!(failed_names(&r1), failed_names(&r2));
        prop_assert_eq!(&r1.skipped, &r2.skipped);

        // Both match the structural prediction.
        let (exp_failed, exp_skipped) = expected_sets(&r1.order, w.deps(), &broken);
        let got_failed: HashSet<String> = failed_names(&r1).into_iter().collect();
        let got_skipped: HashSet<String> =
            r1.skipped.iter().map(ToString::to_string).collect();
        prop_assert_eq!(&got_failed, &exp_failed);
        prop_assert_eq!(&got_skipped, &exp_skipped);

        // Every unit outside failed ∪ skipped built, with bit-identical
        // export pids under both schedulers; failed/skipped units have
        // no bins at all.
        for i in 0..n {
            let name = module_name(i);
            if exp_failed.contains(&name) || exp_skipped.contains(&name) {
                prop_assert!(seq.bin(&name).is_none(), "{name} must not have a bin");
                prop_assert!(par.bin(&name).is_none(), "{name} must not have a bin");
            } else {
                let a = seq.bin(&name).expect("sequential bin").unit.export_pid;
                let b = par.bin(&name).expect("parallel bin").unit.export_pid;
                prop_assert_eq!(a, b, "export pid diverged for {}", name);
            }
        }
    }
}

/// Diamond: the broken left arm fails, the join above it is skipped,
/// and the independent right arm still compiles.
#[test]
fn keep_going_compiles_independent_units_and_skips_dependents() {
    let mut p = Project::new();
    p.add("base", "structure Base = struct val n = 1 end");
    p.add(
        "left",
        r#"structure Left = struct val bad = 1 + "x" val v = Base.n end"#,
    );
    p.add("right", "structure Right = struct val v = Base.n + 1 end");
    p.add("top", "structure Top = struct val v = Left.v + Right.v end");

    let mut irm = Irm::new(BuildStrategy::Cutoff);
    let report = irm
        .build_with(&p, 1, FailurePolicy::KeepGoing)
        .expect("keep-going returns a report, not an error");
    assert!(!report.succeeded());
    assert_eq!(failed_names(&report), vec!["left"]);
    assert_eq!(
        report
            .skipped
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        vec!["top"]
    );
    match report.outcome_for("top") {
        Some(UnitOutcome::Skipped { blocked_on }) => {
            assert_eq!(
                blocked_on
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>(),
                vec!["left"]
            );
        }
        other => panic!("expected top to be skipped, got {other:?}"),
    }
    assert!(matches!(
        report.outcome_for("right"),
        Some(UnitOutcome::Compiled)
    ));
    assert!(irm.bin("base").is_some() && irm.bin("right").is_some());
    assert!(irm.bin("left").is_none() && irm.bin("top").is_none());
}

/// Fixing the broken unit and rebuilding (still keep-going) compiles
/// exactly the previously failed/skipped units and reuses the rest.
#[test]
fn keep_going_recovers_incrementally_after_a_fix() {
    let mut p = Project::new();
    p.add("base", "structure Base = struct val n = 1 end");
    p.add(
        "mid",
        r#"structure Mid = struct val bad = 1 + "x" val v = Base.n end"#,
    );
    p.add("top", "structure Top = struct val v = Mid.v end");

    let mut irm = Irm::new(BuildStrategy::Cutoff);
    let r1 = irm.build_with(&p, 1, FailurePolicy::KeepGoing).unwrap();
    assert_eq!(failed_names(&r1), vec!["mid"]);

    p.edit("mid", "structure Mid = struct val v = Base.n end")
        .unwrap();
    let r2 = irm.build_with(&p, 4, FailurePolicy::KeepGoing).unwrap();
    assert!(r2.succeeded(), "failed: {:?}", failed_names(&r2));
    assert!(r2.was_recompiled("mid") && r2.was_recompiled("top"));
    assert!(!r2.was_recompiled("base"));

    // The recovered build is identical to a from-scratch one.
    let mut fresh = Irm::new(BuildStrategy::Cutoff);
    fresh.build_with(&p, 1, FailurePolicy::FailFast).unwrap();
    for name in ["base", "mid", "top"] {
        assert_eq!(
            irm.bin(name).unwrap().unit.export_pid,
            fresh.bin(name).unwrap().unit.export_pid
        );
    }
}

/// The default policy is unchanged: fail-fast surfaces the first error
/// in topological order as `Err`, identically in both schedulers.
#[test]
fn fail_fast_remains_the_default() {
    let mut p = Project::new();
    p.add("a", "structure A = struct val x = 1 end");
    p.add(
        "b",
        r#"structure B = struct val bad = 1 + "x" val y = A.x end"#,
    );
    let mut seq = Irm::new(BuildStrategy::Cutoff);
    let mut par = Irm::new(BuildStrategy::Cutoff);
    let e1 = seq.build(&p).unwrap_err();
    let e2 = par.build_with(&p, 8, FailurePolicy::FailFast).unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string());
}

/// A compiler panic inside one unit is caught, converted to an
/// internal-error outcome for that unit alone, and the worker pool
/// survives to drain every remaining unit — in both schedulers.
#[test]
fn panicking_unit_fails_only_itself_and_dependents() {
    // The filter string must be unique to this test: the plan is
    // process-global while installed, and sibling tests run
    // concurrently in the same binary.
    let mut p = Project::new();
    p.add("qbase", "structure Qbase = struct val n = 1 end");
    p.add("qboomx", "structure Qboomx = struct val v = Qbase.n end");
    p.add("qabove", "structure Qabove = struct val v = Qboomx.v end");
    p.add(
        "qother",
        "structure Qother = struct val v = Qbase.n + 1 end",
    );

    let _guard = install_scoped(
        FaultPlan::default()
            .with(FaultRule::new(points::COMPILE_UNIT, FaultKind::Panic).filtered("qboomx")),
    );
    for jobs in [1, 4] {
        let mut irm = Irm::new(BuildStrategy::Cutoff);
        let report = irm
            .build_with(&p, jobs, FailurePolicy::KeepGoing)
            .expect("the panic is isolated, not propagated");
        assert_eq!(failed_names(&report), vec!["qboomx"], "jobs={jobs}");
        assert_eq!(
            report
                .skipped
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            vec!["qabove"],
            "jobs={jobs}"
        );
        assert!(report.any_internal_failure());
        let (_, err) = &report.failed[0];
        assert!(err.is_internal(), "{err}");
        assert!(err.to_string().contains("internal compiler error"), "{err}");
        // The pool drained: the independent units all compiled.
        assert!(irm.bin("qbase").is_some() && irm.bin("qother").is_some());
    }
}

/// Under fail-fast, the panic surfaces as `CoreError::Internal` for the
/// panicking unit — the same error the sequential loop reports.
#[test]
fn panic_is_an_internal_error_under_fail_fast() {
    let mut p = Project::new();
    p.add("zzpanic", "structure Zzpanic = struct val x = 1 end");
    let _guard = install_scoped(
        FaultPlan::default()
            .with(FaultRule::new(points::COMPILE_UNIT, FaultKind::Panic).filtered("zzpanic")),
    );
    let mut seq = Irm::new(BuildStrategy::Cutoff);
    let mut par = Irm::new(BuildStrategy::Cutoff);
    let e1 = seq.build(&p).unwrap_err();
    let e2 = par.build_with(&p, 4, FailurePolicy::FailFast).unwrap_err();
    assert!(e1.is_internal(), "{e1}");
    assert!(e2.is_internal(), "{e2}");
    assert_eq!(e1.to_string(), e2.to_string());
}
