//! Library-level crash-debris recovery: every class of half-finished
//! state an aborted process can leave behind is (a) harmless to the
//! next build and (b) detected and repaired by `doctor::run` — the
//! same audit/repair engine behind `smlsc doctor`.
//!
//! The subprocess harness (`crates/smlsc/tests/crash_recovery.rs`)
//! kills real `smlsc` processes at the registered crash points; this
//! suite constructs the resulting debris classes directly — tmp
//! litter, torn ledger tails, truncated and bit-flipped packs,
//! corrupted store objects, stale daemon files — so each repair path
//! is exercised in isolation, including the ones a lucky crash might
//! not produce.

use std::path::{Path, PathBuf};
use std::time::Duration;

use smlsc::core::doctor::{self, DoctorOptions, DoctorVerdict};
use smlsc::core::irm::{Irm, Strategy};
use smlsc::core::ledger::{Ledger, LedgerRecord, LEDGER_FILE, LEDGER_VERSION};
use smlsc::core::pack::PackReader;
use smlsc::core::store::Store;
use smlsc::ids::Pid;
use smlsc::workload::{Topology, Workload, WorkloadSpec};
use smlsc_faults::{install_scoped, points, FaultKind, FaultPlan, FaultRule};

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smlsc-crashlib-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn doctor_on(bin_dir: &Path, store: Option<PathBuf>, fix: bool) -> doctor::DoctorReport {
    doctor::run(&DoctorOptions {
        bin_dir: bin_dir.to_path_buf(),
        store,
        fix,
    })
}

fn record(id: u64) -> LedgerRecord {
    LedgerRecord {
        version: LEDGER_VERSION,
        build_id: id,
        timestamp_ms: 1000 + id,
        strategy: "cutoff".into(),
        jobs: 4,
        host_parallelism: 8,
        wall_us: 100 * id,
        parse_us: 10,
        elaborate_us: 20,
        hash_us: 3,
        dehydrate_us: 4,
        rehydrate_us: 5,
        compiled: 2,
        reused: 1,
        cutoff: 1,
        store_hits: 0,
        skipped: 0,
        failed: 0,
        stamp_hits: 3,
        stamp_misses: 0,
        store_misses: 0,
        deps_cache_hits: 3,
        deps_cache_misses: 0,
        source_reads: 0,
        critical_path: 2,
        exit_code: 0,
        daemon: 0,
    }
}

/// Tmp litter — the staging files a crash between `write` and `rename`
/// strands — is reported, swept by `--fix`, and gone on re-audit.
#[test]
fn tmp_litter_from_crashed_commits_is_swept() {
    let bin = temp("litter");
    // One stranded staging file per durable-write path: stamps, pack,
    // and a ledger rotation.
    for name in ["stamps.tmp-4242-0", "bins.tmp-4242-1", "builds.tmp-4242-2"] {
        std::fs::write(bin.join(name), b"half-written staging bytes").unwrap();
    }

    let report = doctor_on(&bin, None, false);
    assert_eq!(report.verdict(), DoctorVerdict::IssuesFound);
    assert_eq!(report.exit_code(), 4);
    let litter: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.state == "litter")
        .collect();
    assert_eq!(litter.len(), 3, "all three staging files reported");

    let report = doctor_on(&bin, None, true);
    assert_eq!(report.verdict(), DoctorVerdict::Repaired);
    assert_eq!(report.exit_code(), 0);
    for name in ["stamps.tmp-4242-0", "bins.tmp-4242-1", "builds.tmp-4242-2"] {
        assert!(!bin.join(name).exists(), "{name} swept");
    }
    assert_eq!(
        doctor_on(&bin, None, false).verdict(),
        DoctorVerdict::Healthy
    );
    std::fs::remove_dir_all(&bin).ok();
}

/// A torn ledger tail (crash mid-`append`) never corrupts earlier
/// records, is healed over by the next append, and is compacted away
/// by the doctor.
#[test]
fn torn_ledger_tail_heals_and_compacts() {
    use std::io::Write;
    let bin = temp("ledger");
    let ledger = Ledger::for_bin_dir(&bin);
    for i in 1..=3 {
        ledger.append(&record(i)).unwrap();
    }

    // Crash mid-append: a prefix of a record with no trailing newline.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(bin.join(LEDGER_FILE))
        .unwrap();
    f.write_all(b"{\"v\":1,\"build_id\":99,\"timest").unwrap();
    drop(f);

    let audit = ledger.audit();
    assert!(audit.torn_tail, "torn tail detected");
    assert_eq!(audit.valid, 3, "earlier records untouched");

    // The next append heals over the torn tail: its record lands on a
    // fresh line and every valid record survives.
    ledger.append(&record(4)).unwrap();
    let back = ledger.read();
    assert_eq!(back.len(), 4);
    assert_eq!(back.last().unwrap().build_id, 4);
    let audit = ledger.audit();
    assert!(!audit.torn_tail, "tail healed by the append");
    assert_eq!(
        audit.lines - audit.valid,
        1,
        "the torn fragment remains as one dead line"
    );

    // Doctor: reported without --fix, compacted with it.
    let report = doctor_on(&bin, None, false);
    assert_eq!(report.verdict(), DoctorVerdict::IssuesFound);
    assert!(report.findings.iter().any(|f| f.state == "ledger"));
    let report = doctor_on(&bin, None, true);
    assert_eq!(report.verdict(), DoctorVerdict::Repaired);
    let audit = ledger.audit();
    assert_eq!(
        (audit.lines, audit.valid),
        (4, 4),
        "compacted to valid records only"
    );
    assert_eq!(ledger.read().len(), 4, "no record lost by the repair");
    std::fs::remove_dir_all(&bin).ok();
}

/// Seeds a workload, builds it, and persists bins + stamps to `bin`.
fn built_workload(bin: &Path, units: usize) -> Irm {
    let w = Workload::new(WorkloadSpec::with_topology(Topology::Monorepo {
        units,
        seed: 11,
    }));
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(w.project()).unwrap();
    irm.save_bins(bin).unwrap();
    irm.save_stamps(&bin.join("stamps.json")).unwrap();
    irm
}

/// A truncated pack (crash mid-rename exposed by a dirty page loss, or
/// plain disk truncation) is moved aside by the doctor, and the next
/// build recompiles from sources without failing.
#[test]
fn truncated_pack_is_moved_aside_and_rebuilt() {
    let bin = temp("packtrunc");
    built_workload(&bin, 30);
    let pack_path = bin.join("bins.pack");
    let bytes = std::fs::read(&pack_path).unwrap();
    std::fs::write(&pack_path, &bytes[..bytes.len() - 16]).unwrap();
    assert!(
        PackReader::open(&pack_path).is_err(),
        "truncated pack no longer opens"
    );

    let report = doctor_on(&bin, None, true);
    assert_eq!(
        report.verdict(),
        DoctorVerdict::Repaired,
        "{}",
        report.to_json()
    );
    assert!(!pack_path.exists(), "unreadable pack moved aside");

    // The project still builds: a fresh session falls back to sources.
    let w = Workload::new(WorkloadSpec::with_topology(Topology::Monorepo {
        units: 30,
        seed: 11,
    }));
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.load_bins(&bin).unwrap();
    let report = irm.build(w.project()).unwrap();
    assert!(report.succeeded());
    irm.save_bins(&bin).unwrap();
    assert!(
        PackReader::open(&pack_path).unwrap().is_some(),
        "pack rebuilt"
    );
    std::fs::remove_dir_all(&bin).ok();
}

/// A single flipped byte inside one body (latent media corruption
/// under a valid index) is caught by the digest on read; the doctor
/// rewrites the pack keeping every good unit.
#[test]
fn bitflipped_pack_body_is_dropped_keeping_good_units() {
    let bin = temp("packflip");
    built_workload(&bin, 30);
    let pack_path = bin.join("bins.pack");
    let pack = PackReader::open(&pack_path).unwrap().unwrap();
    let victim = pack.entries()[0].clone();
    let total = pack.entries().len();
    drop(pack);

    let mut bytes = std::fs::read(&pack_path).unwrap();
    let mid = usize::try_from(victim.offset + victim.len / 2).unwrap();
    bytes[mid] ^= 0xFF;
    std::fs::write(&pack_path, &bytes).unwrap();

    let report = doctor_on(&bin, None, true);
    assert_eq!(
        report.verdict(),
        DoctorVerdict::Repaired,
        "{}",
        report.to_json()
    );
    let pack = PackReader::open(&pack_path).unwrap().unwrap();
    assert_eq!(
        pack.entries().len(),
        total - 1,
        "only the corrupt body dropped"
    );
    for e in pack.entries() {
        pack.read_body(e.offset, e.len, e.digest)
            .unwrap_or_else(|err| panic!("surviving body {} must verify: {err}", e.name));
    }
    std::fs::remove_dir_all(&bin).ok();
}

/// A corrupted store object (partial write that still got its final
/// name) is quarantined — never served — and the doctor reports the
/// quarantine as a completed repair.
#[test]
fn corrupt_store_object_is_quarantined_not_served() {
    let bin = temp("storebin");
    let root = temp("storeroot");
    let store = Store::open(&root).unwrap();
    let payload = b"compiled unit payload".to_vec();
    let key = Pid::of_bytes(&payload);
    store.put(key, &payload).unwrap();
    assert_eq!(store.get(key), Some(payload.clone()));

    // Corrupt the object in place, keeping its (valid-looking) name.
    let object = walk_files(&root.join("objects"))
        .into_iter()
        .next()
        .expect("one published object on disk");
    let bytes = std::fs::read(&object).unwrap();
    std::fs::write(&object, &bytes[..bytes.len() / 2]).unwrap();

    let report = doctor_on(&bin, Some(root.clone()), false);
    let store_findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.state == "store")
        .collect();
    assert_eq!(store_findings.len(), 1);
    assert!(
        store_findings[0].repaired,
        "verification quarantines on detection, even without --fix"
    );
    assert_eq!(store.get(key), None, "corrupt object is never served");
    std::fs::remove_dir_all(&bin).ok();
    std::fs::remove_dir_all(&root).ok();
}

/// Store tmp litter (a publisher killed before its rename) is swept by
/// the doctor's `--fix` pass.
#[test]
fn store_tmp_litter_is_swept_by_fix() {
    let bin = temp("storetmpbin");
    let root = temp("storetmp");
    let store = Store::open(&root).unwrap();
    drop(store);
    std::fs::write(root.join("tmp/obj-1234-0"), b"half a payload").unwrap();

    let report = doctor_on(&bin, Some(root.clone()), false);
    assert_eq!(report.verdict(), DoctorVerdict::IssuesFound);
    let report = doctor_on(&bin, Some(root.clone()), true);
    assert_eq!(
        report.verdict(),
        DoctorVerdict::Repaired,
        "{}",
        report.to_json()
    );
    assert!(!root.join("tmp/obj-1234-0").exists(), "litter swept");
    std::fs::remove_dir_all(&bin).ok();
    std::fs::remove_dir_all(&root).ok();
}

/// The store's own sweep respects the age gate: fresh tmp files (a
/// publisher mid-flight right now) are left alone.
#[test]
fn store_tmp_sweep_respects_min_age() {
    let root = temp("storeage");
    let store = Store::open(&root).unwrap();
    std::fs::write(root.join("tmp/obj-9-9"), b"in flight").unwrap();
    let swept = store.sweep_tmp(Duration::from_secs(3600)).unwrap();
    assert_eq!(swept, 0, "young tmp files survive an aged sweep");
    let swept = store.sweep_tmp(Duration::ZERO).unwrap();
    assert_eq!(swept, 1, "a zero-age sweep collects them");
    std::fs::remove_dir_all(&root).ok();
}

/// An IO failure at any stage of the pack rewrite leaves the previous
/// pack fully readable — the build's artifacts are never torn by a
/// failed save — at both harness scales.
#[test]
fn failed_pack_save_never_tears_the_previous_pack() {
    for units in [50, 200] {
        for stage in ["begin", "staged"] {
            let bin = temp(&format!("iosave-{units}-{stage}"));
            let mut w = Workload::new(WorkloadSpec::with_topology(Topology::Monorepo {
                units,
                seed: 11,
            }));
            let mut irm = Irm::new(Strategy::Cutoff);
            irm.build(w.project()).unwrap();
            irm.save_bins(&bin).unwrap();

            // Dirty one unit so the next save really rewrites the pack,
            // then fail that save at the given stage.
            w.edit(units - 1, smlsc::workload::EditKind::BodyOnly);
            irm.build(w.project()).unwrap();
            {
                let _f = install_scoped(
                    FaultPlan::seeded(1)
                        .with(FaultRule::new(points::PACK_SAVE, FaultKind::Io).filtered(stage)),
                );
                irm.save_bins(&bin).unwrap_err();
            }

            // The previous pack is intact: opens, and every body
            // verifies against its digest.
            let pack = PackReader::open(&bin.join("bins.pack")).unwrap().unwrap();
            assert_eq!(pack.entries().len(), units, "{units}/{stage}: entry count");
            for e in pack.entries() {
                pack.read_body(e.offset, e.len, e.digest)
                    .unwrap_or_else(|err| {
                        panic!(
                            "{units}/{stage}: body {} torn by failed save: {err}",
                            e.name
                        )
                    });
            }
            drop(pack);

            // With the fault gone the save completes and carries the
            // edited unit.
            irm.save_bins(&bin).unwrap();
            let pack = PackReader::open(&bin.join("bins.pack")).unwrap().unwrap();
            assert_eq!(pack.entries().len(), units);
            std::fs::remove_dir_all(&bin).ok();
        }
    }
}

/// Stale daemon files from a killed daemon are findings; `--fix`
/// clears both lock and socket; a live owner's files are untouched.
#[test]
fn stale_daemon_files_are_cleared_live_ones_kept() {
    let bin = temp("daemonfiles");
    std::fs::write(bin.join("daemon.lock"), format!("{}\n", u32::MAX)).unwrap();
    std::fs::write(bin.join("daemon.sock"), b"").unwrap();

    let report = doctor_on(&bin, None, true);
    assert_eq!(
        report.verdict(),
        DoctorVerdict::Repaired,
        "{}",
        report.to_json()
    );
    assert!(!bin.join("daemon.lock").exists());
    assert!(!bin.join("daemon.sock").exists());

    // A lockfile naming a live pid (ours) is healthy state.
    std::fs::write(bin.join("daemon.lock"), format!("{}\n", std::process::id())).unwrap();
    let report = doctor_on(&bin, None, true);
    assert_eq!(report.verdict(), DoctorVerdict::Healthy);
    assert!(bin.join("daemon.lock").exists(), "live owner's lock kept");
    std::fs::remove_dir_all(&bin).ok();
}

/// Corrupt stamps (crash mid-write caught by the payload digest) are
/// deleted by `--fix`; the stamp cache is a pure accelerator, so the
/// next build just runs cold.
#[test]
fn corrupt_stamps_are_deleted_by_fix() {
    let bin = temp("stamps");
    std::fs::write(bin.join("stamps.json"), b"SMLSSTM2 then garbage bytes").unwrap();
    let report = doctor_on(&bin, None, false);
    assert_eq!(report.verdict(), DoctorVerdict::IssuesFound);
    assert!(report.findings.iter().any(|f| f.state == "stamps"));
    let report = doctor_on(&bin, None, true);
    assert_eq!(report.verdict(), DoctorVerdict::Repaired);
    assert!(!bin.join("stamps.json").exists());
    std::fs::remove_dir_all(&bin).ok();
}

/// A torn `deps.pack` sidecar (crash mid-commit caught by the payload
/// digest) reads as absent: the next build silently re-derives the
/// import DAG from the per-unit analyses and rebuilds exactly the
/// edited cone — never a wrong build.  The doctor reports the torn
/// sidecar and `--fix` deletes it.
#[test]
fn torn_deps_sidecar_is_rederived_and_repaired() {
    let bin = temp("depstorn");
    let mut w = Workload::new(WorkloadSpec::with_topology(Topology::Monorepo {
        units: 40,
        seed: 11,
    }));
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(w.project()).unwrap();
    {
        let _f = install_scoped(
            FaultPlan::seeded(1).with(FaultRule::new(points::DEPS_SAVE, FaultKind::Torn)),
        );
        irm.save_bins(&bin).unwrap();
    }
    let deps_path = bin.join("deps.pack");
    assert!(deps_path.exists(), "torn commit still publishes a file");
    assert!(
        smlsc::core::depgraph::DepGraph::audit(&deps_path).is_err(),
        "half-written sidecar fails its digest"
    );

    // A fresh session tolerates the torn sidecar: the warm no-op build
    // re-derives the graph from analyses and reuses every unit.
    let mut warm = Irm::new(Strategy::Cutoff);
    warm.load_bins(&bin).unwrap();
    let report = warm.build(w.project()).unwrap();
    assert!(report.succeeded());
    assert_eq!(report.reused.len(), 40, "no-op over torn sidecar");

    // And a leaf edit over the torn sidecar recompiles exactly its cone.
    w.edit(39, smlsc::workload::EditKind::BodyOnly);
    let mut warm = Irm::new(Strategy::Cutoff);
    warm.load_bins(&bin).unwrap();
    let report = warm.build(w.project()).unwrap();
    assert!(report.succeeded());
    assert_eq!(
        report.recompiled.len(),
        1,
        "exactly the edited leaf rebuilt"
    );

    // Doctor: reported without --fix, deleted with it.
    let dr = doctor_on(&bin, None, false);
    assert_eq!(dr.verdict(), DoctorVerdict::IssuesFound);
    assert!(dr.findings.iter().any(|f| f.state == "deps"));
    let dr = doctor_on(&bin, None, true);
    assert_eq!(dr.verdict(), DoctorVerdict::Repaired, "{}", dr.to_json());
    assert!(!deps_path.exists(), "corrupt sidecar deleted");

    // A clean save republishes a valid sidecar.
    warm.save_bins(&bin).unwrap();
    let n = smlsc::core::depgraph::DepGraph::audit(&deps_path).unwrap();
    assert_eq!(n, 40, "republished sidecar covers every unit");
    std::fs::remove_dir_all(&bin).ok();
}

/// An IO failure while publishing the sidecar fails the save without
/// touching the already-committed pack; retrying with the fault gone
/// completes the publication.
#[test]
fn failed_deps_save_keeps_pack_intact() {
    let bin = temp("depsio");
    let w = Workload::new(WorkloadSpec::with_topology(Topology::Monorepo {
        units: 30,
        seed: 11,
    }));
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(w.project()).unwrap();
    {
        let _f = install_scoped(
            FaultPlan::seeded(1)
                .with(FaultRule::new(points::DEPS_SAVE, FaultKind::Io).filtered("begin")),
        );
        irm.save_bins(&bin).unwrap_err();
    }
    let pack = PackReader::open(&bin.join("bins.pack")).unwrap().unwrap();
    assert_eq!(
        pack.entries().len(),
        30,
        "pack committed before the sidecar"
    );
    drop(pack);
    assert!(!bin.join("deps.pack").exists());

    irm.save_bins(&bin).unwrap();
    let n = smlsc::core::depgraph::DepGraph::audit(&bin.join("deps.pack")).unwrap();
    assert_eq!(n, 30);
    std::fs::remove_dir_all(&bin).ok();
}

fn walk_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            out.extend(walk_files(&p));
        } else {
            out.push(p);
        }
    }
    out
}
