//! Corruption recovery: malformed bin files are reported as
//! `CoreError::CorruptBin`, and a build over a damaged bin cache
//! degrades to recompiling exactly the damaged units — never to a wrong
//! answer.

use std::path::{Path, PathBuf};

use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_core::{BinFile, CoreError};
use smlsc_ids::Pid;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-corrupt-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn project() -> Project {
    let mut p = Project::new();
    p.add("base", "structure Base = struct val n = 10 end");
    p.add("mid", "structure Mid = struct val v = Base.n + 1 end");
    p.add("top", "structure Top = struct val t = Mid.v * 2 end");
    p
}

fn export_pids(irm: &Irm) -> Vec<(String, Pid)> {
    let mut pids: Vec<(String, Pid)> = ["base", "mid", "top"]
        .iter()
        .map(|n| (n.to_string(), irm.bin(n).unwrap().unit.export_pid))
        .collect();
    pids.sort();
    pids
}

fn saved_bin(dir: &Path, unit: &str) -> Vec<u8> {
    std::fs::read(dir.join(format!("{unit}.bin"))).unwrap()
}

#[test]
fn truncated_bin_is_corrupt() {
    let dir = temp_dir("trunc");
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&project()).unwrap();
    irm.save_bins_files(&dir).unwrap();

    let bytes = saved_bin(&dir, "mid");
    let truncated = &bytes[..bytes.len() / 2];
    assert!(matches!(
        BinFile::from_bytes(truncated),
        Err(CoreError::CorruptBin(_))
    ));
    // Truncating *into* the magic is also corrupt, not a panic.
    assert!(matches!(
        BinFile::from_bytes(&bytes[..4]),
        Err(CoreError::CorruptBin(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_bin_is_corrupt() {
    let dir = temp_dir("flip");
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&project()).unwrap();
    irm.save_bins_files(&dir).unwrap();

    let mut bytes = saved_bin(&dir, "base");
    // Flip a byte inside the payload; the container self-digest catches it.
    let k = bytes.len() - 2;
    bytes[k] = 0x00;
    assert!(matches!(
        BinFile::from_bytes(&bytes),
        Err(CoreError::CorruptBin(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_magic_is_corrupt() {
    assert!(matches!(
        BinFile::from_bytes(b"WRONGMAG{\"unit\":{}}"),
        Err(CoreError::CorruptBin(_))
    ));
    assert!(matches!(
        BinFile::from_bytes(b""),
        Err(CoreError::CorruptBin(_))
    ));
}

#[test]
fn build_over_a_corrupted_cache_recompiles_and_matches() {
    let dir = temp_dir("rebuild");
    let p = project();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    irm.save_bins_files(&dir).unwrap();
    let clean_pids = export_pids(&irm);

    // Damage one bin three different ways across three fresh sessions;
    // each session loads what it can, recompiles the rest, and lands on
    // identical export pids.
    let original = saved_bin(&dir, "mid");
    let mut flipped = original.clone();
    let k = flipped.len() - 2;
    flipped[k] = 0x00;
    let damages: Vec<(&str, Vec<u8>)> = vec![
        ("truncated", original[..original.len() / 2].to_vec()),
        ("bit-flipped", flipped),
        ("wrong-magic", b"NOTABIN!garbage".to_vec()),
    ];
    for (what, bytes) in damages {
        std::fs::write(dir.join("mid.bin"), &bytes).unwrap();
        let mut session = Irm::new(Strategy::Cutoff);
        let outcome = session.load_bins(&dir).unwrap();
        assert_eq!(outcome.loaded, 2, "{what}: {:?}", outcome.corrupt);
        assert_eq!(outcome.corrupt.len(), 1, "{what}");
        assert!(
            matches!(outcome.corrupt[0].1, CoreError::CorruptBin(_)),
            "{what}: {:?}",
            outcome.corrupt[0]
        );

        let report = session.build(&p).unwrap();
        assert!(
            report.was_recompiled("mid"),
            "{what}: {:?}",
            report.decisions
        );
        assert!(!report.was_recompiled("base"), "{what}");
        // mid's interface is unchanged, so top is cut off, not rebuilt.
        assert!(
            !report.was_recompiled("top"),
            "{what}: {:?}",
            report.decisions
        );
        assert_eq!(export_pids(&session), clean_pids, "{what}");
        let (_, env) = session.execute(&p).unwrap();
        assert_eq!(env.len(), 3, "{what}");

        // Re-save repairs the cache for the next round.
        session.save_bins(&dir).unwrap();
        let check = Irm::new(Strategy::Cutoff)
            .load_bins(&dir)
            .map(|o| o.corrupt.len());
        assert_eq!(check.unwrap(), 0, "{what}: save did not repair");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn atomic_save_leaves_no_temp_files_and_skips_clean_bins() {
    let dir = temp_dir("atomic");
    let p = project();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    irm.save_bins_files(&dir).unwrap();

    let entries = || {
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    };
    assert_eq!(entries(), ["base.bin", "mid.bin", "top.bin"]);

    // A second save with nothing dirty must rewrite nothing: mtimes of
    // the on-disk files stay identical.
    let stamp = |name: &str| {
        std::fs::metadata(dir.join(name))
            .unwrap()
            .modified()
            .unwrap()
    };
    let before: Vec<_> = ["base.bin", "mid.bin", "top.bin"]
        .iter()
        .map(|n| stamp(n))
        .collect();
    irm.save_bins_files(&dir).unwrap();
    let after: Vec<_> = ["base.bin", "mid.bin", "top.bin"]
        .iter()
        .map(|n| stamp(n))
        .collect();
    assert_eq!(before, after, "no-op save must not rewrite bins");
    assert_eq!(entries(), ["base.bin", "mid.bin", "top.bin"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn atomic_archive_save_migrates_and_skips_when_clean() {
    let dir = temp_dir("atomic-pack");
    let p = project();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    irm.save_bins_files(&dir).unwrap();

    // A fresh session loads the legacy files and saves the archive:
    // the per-unit bins migrate into `bins.pack` and are deleted.
    let mut session = Irm::new(Strategy::Cutoff);
    assert_eq!(session.load_bins(&dir).unwrap().loaded, 3);
    session.save_bins(&dir).unwrap();
    let entries = || {
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    };
    assert_eq!(entries(), ["bins.pack"]);

    // A load + no-op save must not rewrite the archive.  The first warm
    // save publishes the import-DAG sidecar next to the archive; a second
    // no-op save must leave both files untouched.
    let mut warm = Irm::new(Strategy::Cutoff);
    assert_eq!(warm.load_bins(&dir).unwrap().loaded, 3);
    warm.build(&p).unwrap();
    let before = std::fs::metadata(dir.join("bins.pack"))
        .unwrap()
        .modified()
        .unwrap();
    warm.save_bins(&dir).unwrap();
    let after = std::fs::metadata(dir.join("bins.pack"))
        .unwrap()
        .modified()
        .unwrap();
    assert_eq!(before, after, "no-op save must not rewrite the archive");
    assert_eq!(entries(), ["bins.pack", "deps.pack"]);
    let deps_before = std::fs::metadata(dir.join("deps.pack"))
        .unwrap()
        .modified()
        .unwrap();
    warm.save_bins(&dir).unwrap();
    let deps_after = std::fs::metadata(dir.join("deps.pack"))
        .unwrap()
        .modified()
        .unwrap();
    assert_eq!(
        deps_before, deps_after,
        "no-op save must not rewrite the sidecar"
    );
    std::fs::remove_dir_all(&dir).ok();
}
