//! Property-based tests over the whole system.
//!
//! The central property is the manager's correctness contract: **after
//! any sequence of edits, an incremental cutoff build produces a program
//! observationally equivalent to a from-scratch build** — while
//! recompiling no more units than the classical strategy.

use proptest::prelude::*;
use smlsc::core::irm::{Irm, Strategy as BuildStrategy};
use smlsc::core::DynEnv;
use smlsc::dynamics::value::Value;
use smlsc::ids::{Digest128, Pid, Symbol};
use smlsc::workload::{module_name, EditKind, Topology, Workload, WorkloadSpec};

fn arb_topology() -> impl Strategy2<Value = Topology> {
    prop_oneof![
        (2usize..10).prop_map(|n| Topology::Chain { n }),
        (1usize..3, 2usize..3).prop_map(|(depth, branching)| Topology::Tree { depth, branching }),
        (2usize..4, 1usize..4).prop_map(|(width, depth)| Topology::Diamond { width, depth }),
        (2usize..6, 0usize..8, any::<u64>()).prop_map(|(lib, clients, seed)| Topology::Library {
            lib,
            clients,
            seed
        }),
    ]
}

// `Strategy` clashes with the IRM's; alias proptest's.
use proptest::strategy::Strategy as Strategy2;

fn arb_edit() -> impl Strategy2<Value = EditKind> {
    prop_oneof![
        Just(EditKind::CommentOnly),
        Just(EditKind::BodyOnly),
        Just(EditKind::InterfaceAdd),
        Just(EditKind::InterfaceChangeType),
    ]
}

fn render(v: &Value) -> String {
    match v {
        Value::Record(fields) => {
            let inner: Vec<String> = fields.iter().map(render).collect();
            format!("{{{}}}", inner.join(", "))
        }
        other => other.to_string(),
    }
}

fn snapshot(env: &DynEnv, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let name = module_name(i);
            let linked = env.get(Symbol::intern(&name)).expect("linked");
            format!("{name}={}", render(&linked.values))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental cutoff builds are observationally equivalent to clean
    /// builds under arbitrary edit sequences, and never recompile more
    /// than classical.
    #[test]
    fn incremental_equals_clean(
        topo in arb_topology(),
        edits in proptest::collection::vec((any::<u16>(), arb_edit()), 1..5),
        relay in any::<bool>(),
    ) {
        let spec = WorkloadSpec {
            topology: topo,
            funs_per_module: 2,
            reexport_dep_types: relay,
        };
        let mut w = Workload::new(spec);
        let n = w.module_count();
        let mut incremental = Irm::new(BuildStrategy::Cutoff);
        incremental.build(w.project()).unwrap();

        for (victim, kind) in edits {
            let victim = victim as usize % n;
            w.edit(victim, kind);
            let report = incremental.build(w.project()).unwrap();

            // Classical over the same history would have recompiled at
            // least as much right now (fresh managers for the comparison).
            let mut classical = Irm::new(BuildStrategy::Classical);
            let mut w2 = Workload::new(spec);
            classical.build(w2.project()).unwrap();
            w2.edit(victim, kind);
            let creport = classical.build(w2.project()).unwrap();
            prop_assert!(
                report.recompiled.len() <= creport.recompiled.len(),
                "cutoff {} > classical {}",
                report.recompiled.len(),
                creport.recompiled.len()
            );
        }

        // Equivalence with a from-scratch build.
        let (_, inc_env) = incremental.execute(w.project()).unwrap();
        let mut fresh = Irm::new(BuildStrategy::Cutoff);
        let (_, clean_env) = fresh.execute(w.project()).unwrap();
        prop_assert_eq!(snapshot(&inc_env, n), snapshot(&clean_env, n));
    }

    /// Comment-only edits never invalidate any dependent, anywhere.
    #[test]
    fn comment_edits_recompile_exactly_one(
        topo in arb_topology(),
        victim in any::<u16>(),
    ) {
        let mut w = Workload::new(WorkloadSpec {
            topology: topo,
            funs_per_module: 1,
            reexport_dep_types: false,
        });
        let n = w.module_count();
        let mut irm = Irm::new(BuildStrategy::Cutoff);
        irm.build(w.project()).unwrap();
        w.edit(victim as usize % n, EditKind::CommentOnly);
        let report = irm.build(w.project()).unwrap();
        prop_assert_eq!(report.recompiled.len(), 1);
    }

    /// Export pids depend only on interfaces: regenerating the same
    /// module from the same state always digests identically, and digests
    /// are insensitive to which session compiles first.
    #[test]
    fn export_pids_are_reproducible(seed in any::<u64>()) {
        let topo = Topology::Library { lib: 3, clients: 3, seed };
        let spec = WorkloadSpec {
            topology: topo,
            funs_per_module: 2,
            reexport_dep_types: false,
        };
        let w1 = Workload::new(spec);
        let w2 = Workload::new(spec);
        let mut irm1 = Irm::new(BuildStrategy::Cutoff);
        let mut irm2 = Irm::new(BuildStrategy::Cutoff);
        irm1.build(w1.project()).unwrap();
        irm2.build(w2.project()).unwrap();
        for i in 0..w1.module_count() {
            let name = module_name(i);
            prop_assert_eq!(
                irm1.bin(&name).unwrap().unit.export_pid,
                irm2.bin(&name).unwrap().unit.export_pid,
                "unit {} diverged", name
            );
        }
    }

    /// The digest is deterministic, length-sensitive, and truncation is a
    /// pure mask.
    #[test]
    fn digest_properties(data in proptest::collection::vec(any::<u8>(), 0..256), bits in 1u32..=128) {
        let mut d1 = Digest128::new();
        d1.write_bytes(&data);
        let mut d2 = Digest128::new();
        d2.write_bytes(&data);
        prop_assert_eq!(d1.finish(), d2.finish());
        let pid = Pid::from_raw(d1.finish());
        let t = pid.truncate(bits);
        if bits < 128 {
            prop_assert_eq!(t, pid.as_raw() & ((1u128 << bits) - 1));
        } else {
            prop_assert_eq!(t, pid.as_raw());
        }
    }

    /// The lexer never panics and either tokenizes or reports a located
    /// error on arbitrary input.
    #[test]
    fn lexer_total(input in "\\PC*") {
        match smlsc::syntax::lexer::lex(&input) {
            Ok(toks) => prop_assert!(!toks.is_empty(), "always at least EOF"),
            Err(e) => prop_assert!(e.loc.line >= 1),
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(input in "\\PC*") {
        let _ = smlsc::syntax::parse_unit(&input);
    }
}
