//! Parallel/sequential equivalence for the wavefront scheduler.
//!
//! The contract of `Irm::build_with_jobs` is *bit-identical results*:
//! for any project, any edit history and any worker count, the parallel
//! build must produce the same export pids, the same per-unit rebuild
//! decisions, the same report ordering and the same link results as the
//! sequential loop.  These tests drive both schedulers through seeded
//! random topologies and edit sequences and compare everything
//! observable.

use proptest::prelude::*;
use proptest::strategy::Strategy as Strategy2;
use smlsc::core::irm::{Irm, Project, Strategy as BuildStrategy};
use smlsc::core::BuildReport;
use smlsc::ids::Symbol;
use smlsc::workload::{module_name, EditKind, Topology, Workload, WorkloadSpec};

fn arb_topology() -> impl Strategy2<Value = Topology> {
    prop_oneof![
        (2usize..10).prop_map(|n| Topology::Chain { n }),
        (1usize..3, 2usize..4).prop_map(|(depth, branching)| Topology::Tree { depth, branching }),
        (2usize..6, 1usize..4).prop_map(|(width, depth)| Topology::Diamond { width, depth }),
        (2usize..6, 0usize..8, any::<u64>()).prop_map(|(lib, clients, seed)| Topology::Library {
            lib,
            clients,
            seed
        }),
    ]
}

fn arb_edit() -> impl Strategy2<Value = EditKind> {
    prop_oneof![
        Just(EditKind::CommentOnly),
        Just(EditKind::BodyOnly),
        Just(EditKind::InterfaceAdd),
        Just(EditKind::InterfaceChangeType),
    ]
}

/// Every unit's export pid as recorded in the bin store.
fn export_pids(irm: &Irm, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let name = module_name(i);
            irm.bin(&name).map_or_else(
                || format!("{name}=none"),
                |b| format!("{name}={}", b.unit.export_pid),
            )
        })
        .collect()
}

/// The portions of a report that must match for *any* strategy.  Full
/// decision payloads are compared only under cutoff: timestamp decisions
/// quote mtimes, which two independent managers assign at different
/// virtual-clock ticks.
fn assert_reports_equal(seq: &BuildReport, par: &BuildReport, full_decisions: bool) {
    assert_eq!(seq.order, par.order);
    assert_eq!(seq.recompiled, par.recompiled);
    assert_eq!(seq.reused, par.reused);
    assert_eq!(seq.decision_kinds(), par.decision_kinds());
    if full_decisions {
        assert_eq!(seq.decisions, par.decisions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// jobs=8 and jobs=1 agree on pids, decisions and link results over
    /// random topologies and edit histories (cutoff strategy).
    #[test]
    fn wavefront_matches_sequential_over_edit_history(
        topo in arb_topology(),
        edits in proptest::collection::vec((any::<u16>(), arb_edit()), 1..5),
        relay in any::<bool>(),
    ) {
        let spec = WorkloadSpec {
            topology: topo,
            funs_per_module: 2,
            reexport_dep_types: relay,
        };
        let mut w = Workload::new(spec);
        let n = w.module_count();
        let mut seq = Irm::new(BuildStrategy::Cutoff);
        let mut par = Irm::new(BuildStrategy::Cutoff);

        let r1 = seq.build_with_jobs(w.project(), 1).unwrap();
        let r2 = par.build_with_jobs(w.project(), 8).unwrap();
        assert_reports_equal(&r1, &r2, true);
        prop_assert_eq!(export_pids(&seq, n), export_pids(&par, n));

        for (victim, kind) in edits {
            w.edit(victim as usize % n, kind);
            let r1 = seq.build_with_jobs(w.project(), 1).unwrap();
            let r2 = par.build_with_jobs(w.project(), 8).unwrap();
            assert_reports_equal(&r1, &r2, true);
            prop_assert_eq!(export_pids(&seq, n), export_pids(&par, n));
        }

        // Observational equivalence of the linked programs.
        let (_, e1) = seq.execute_with_jobs(w.project(), 1).unwrap();
        let (_, e2) = par.execute_with_jobs(w.project(), 8).unwrap();
        for i in 0..n {
            let name = Symbol::intern(&module_name(i));
            let a = e1.get(name).expect("linked sequentially");
            let b = e2.get(name).expect("linked in parallel");
            prop_assert_eq!(a.export_pid, b.export_pid);
            prop_assert_eq!(a.values.to_string(), b.values.to_string());
        }
    }

    /// The same equivalence holds for the baseline strategies, at the
    /// decision-kind level (timestamp payloads quote clock values).
    #[test]
    fn wavefront_matches_sequential_for_baselines(
        topo in arb_topology(),
        victim in any::<u16>(),
        kind in arb_edit(),
    ) {
        for strategy in [BuildStrategy::Timestamp, BuildStrategy::Classical] {
            let spec = WorkloadSpec {
                topology: topo,
                funs_per_module: 1,
                reexport_dep_types: false,
            };
            let mut w = Workload::new(spec);
            let n = w.module_count();
            let mut seq = Irm::new(strategy);
            let mut par = Irm::new(strategy);
            let r1 = seq.build_with_jobs(w.project(), 1).unwrap();
            let r2 = par.build_with_jobs(w.project(), 4).unwrap();
            assert_reports_equal(&r1, &r2, false);
            w.edit(victim as usize % n, kind);
            let r1 = seq.build_with_jobs(w.project(), 1).unwrap();
            let r2 = par.build_with_jobs(w.project(), 4).unwrap();
            assert_reports_equal(&r1, &r2, false);
            prop_assert_eq!(export_pids(&seq, n), export_pids(&par, n));
        }
    }
}

/// More workers than units is fine, and still identical.
#[test]
fn more_jobs_than_units() {
    let mut p = Project::new();
    p.add("a", "structure A = struct val x = 1 end");
    p.add("b", "structure B = struct val y = A.x + 1 end");
    let mut seq = Irm::new(BuildStrategy::Cutoff);
    let mut par = Irm::new(BuildStrategy::Cutoff);
    let r1 = seq.build_with_jobs(&p, 1).unwrap();
    let r2 = par.build_with_jobs(&p, 64).unwrap();
    assert_reports_equal(&r1, &r2, true);
    assert_eq!(export_pids(&seq, 0), export_pids(&par, 0));
    assert_eq!(
        seq.bin("b").unwrap().unit.export_pid,
        par.bin("b").unwrap().unit.export_pid
    );
}

/// On failure the parallel build reports the error of the *first unit in
/// topological order* that failed — the one the sequential loop would
/// have stopped at — and merges exactly the bins before it.
#[test]
fn parallel_error_matches_sequential() {
    let mut p = Project::new();
    p.add("a", "structure A = struct val x = 1 end");
    // `b` fails to elaborate (no such export on A); `c` is fine and
    // independent of `b`, but sits after it in topological order.
    p.add("b", "structure B = struct val y = A.missing end");
    p.add("c", "structure C = struct val z = A.x end");

    let mut seq = Irm::new(BuildStrategy::Cutoff);
    let mut par = Irm::new(BuildStrategy::Cutoff);
    let e1 = seq.build_with_jobs(&p, 1).unwrap_err();
    let e2 = par.build_with_jobs(&p, 8).unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string());
    // Both stores hold `a` and nothing at or after the failing unit.
    for irm in [&seq, &par] {
        assert!(irm.bin("a").is_some());
        assert!(irm.bin("b").is_none());
        assert!(irm.bin("c").is_none());
    }
}
