//! Warm-build correctness: the persistent stamp cache, the indexed
//! lazy bin archive, and the guarantee that every fast path is
//! *observationally identical* to the eager paranoid baseline.
//!
//! The central property: stamped and paranoid sessions, over pack and
//! legacy per-file bins, produce bit-identical export pids and the
//! same `RebuildDecision` sequence after any seeded edit history.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_core::{trace, RebuildDecision};
use smlsc_faults::{install_scoped, points, FaultKind, FaultPlan, FaultRule};
use smlsc_ids::Pid;
use smlsc_workload::{module_name, EditKind, Topology, Workload, WorkloadSpec};

static NEXT: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smlsc-warm-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn project() -> Project {
    let mut p = Project::new();
    p.add("base", "structure Base = struct val n = 10 end");
    p.add("mid", "structure Mid = struct val v = Base.n + 1 end");
    p.add("top", "structure Top = struct val t = Mid.v * 2 end");
    p
}

fn export_pids(irm: &Irm) -> Vec<(String, Pid)> {
    let mut pids: Vec<(String, Pid)> = ["base", "mid", "top"]
        .iter()
        .map(|n| (n.to_string(), irm.bin_meta(n).unwrap().export_pid))
        .collect();
    pids.sort();
    pids
}

/// A torn body inside `bins.pack` — written under the *true* digest, so
/// the index loads cleanly — is caught on first use and quarantines
/// exactly the affected unit; everything else still links from the
/// archive.
#[test]
fn torn_archive_body_quarantines_only_the_affected_unit() {
    let dir = temp_dir("torn-body");
    let p = project();
    let clean = {
        let mut irm = Irm::new(Strategy::Cutoff);
        irm.build(&p).unwrap();
        let pids = export_pids(&irm);
        let _guard = install_scoped(
            FaultPlan::default()
                .with(FaultRule::new(points::BIN_SAVE, FaultKind::Torn).filtered("mid")),
        );
        irm.save_bins(&dir).unwrap();
        pids
    };

    let collector = trace::Collector::new();
    collector.install();
    let mut session = Irm::new(Strategy::Cutoff);
    let outcome = session.load_bins(&dir).unwrap();
    // The index is intact, so loading sees nothing wrong yet: bodies
    // are verified lazily, on first use.
    assert_eq!(outcome.loaded, 3, "{:?}", outcome.corrupt);
    assert!(outcome.corrupt.is_empty(), "{:?}", outcome.corrupt);

    // Linking forces bodies; the torn one is quarantined and exactly
    // `mid` recompiles, while `base` and `top` rehydrate from the
    // archive.  `mid`'s interface is unchanged, so `top` is cut off.
    let (report, env) = session.execute(&p).unwrap();
    trace::uninstall();
    assert_eq!(env.len(), 3);
    assert!(report.was_recompiled("mid"), "{:?}", report.decisions);
    assert!(!report.was_recompiled("base"), "{:?}", report.decisions);
    assert!(!report.was_recompiled("top"), "{:?}", report.decisions);
    assert_eq!(collector.counter(trace::names::BIN_BODY_QUARANTINED), 1);
    assert_eq!(export_pids(&session), clean);
    std::fs::remove_dir_all(&dir).ok();
}

/// Damage to the archive's *index* (footer truncation, a flipped byte
/// inside the index JSON) rejects the whole archive in one corruption
/// report; the build degrades to a full recompile and matches clean.
#[test]
fn corrupt_archive_index_degrades_to_full_recompile() {
    let p = project();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    let clean = export_pids(&irm);

    for what in ["truncated-footer", "flipped-index"] {
        let dir = temp_dir(what);
        irm.save_bins(&dir).unwrap();
        let pack = dir.join("bins.pack");
        let mut bytes = std::fs::read(&pack).unwrap();
        match what {
            "truncated-footer" => bytes.truncate(bytes.len() - 8),
            _ => {
                // Last byte before the 40-byte footer sits inside the
                // binary index: flipping it breaks the index digest.
                let k = bytes.len() - 41;
                bytes[k] ^= 0xff;
            }
        }
        std::fs::write(&pack, &bytes).unwrap();

        let mut session = Irm::new(Strategy::Cutoff);
        let outcome = session.load_bins(&dir).unwrap();
        assert_eq!(outcome.loaded, 0, "{what}");
        assert_eq!(outcome.corrupt.len(), 1, "{what}: {:?}", outcome.corrupt);
        let report = session.build(&p).unwrap();
        assert_eq!(report.recompiled.len(), 3, "{what}: {:?}", report.decisions);
        assert_eq!(export_pids(&session), clean, "{what}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Transcribes a session's saved v2 archive into a `SMLSPAK1` archive
/// with `SMLCBIN1` JSON bodies — the on-disk state a project last built
/// before the binary-index format existed.  `mutate` may corrupt a
/// body's bytes *before* the (matching) digest is computed, modelling a
/// torn write under the true digest.
fn transcribe_to_v1(v2_pack: &Path, v1_pack: &Path, mutate: impl Fn(&str, &mut Vec<u8>)) {
    use smlsc_core::pack::PackReader;
    let reader = PackReader::open(v2_pack).unwrap().expect("archive exists");
    let items: Vec<(smlsc_core::BinMeta, Vec<u8>)> = reader
        .entries()
        .iter()
        .map(|e| {
            let body = reader.read_body(e.offset, e.len, e.digest).unwrap();
            let bin = smlsc_core::BinFile::from_bytes(&body).unwrap();
            let mut legacy = bin.to_legacy_v1_bytes();
            mutate(e.name.as_str(), &mut legacy);
            (e.meta(), legacy)
        })
        .collect();
    smlsc_core::pack::write_legacy_v1_pack(v1_pack, &items).unwrap();
}

/// A project last saved under the version-1 pack format (JSON index,
/// JSON bodies) must load, build warm with zero recompiles, and have its
/// archive rewritten in the current binary format by the next save —
/// even a save with nothing newly compiled.
#[test]
fn legacy_v1_archive_loads_builds_warm_and_is_rewritten_as_v2() {
    use smlsc_core::pack::PACK_FILE;
    let base = temp_dir("v1-migrate");
    let p = project();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    let clean = export_pids(&irm);
    let v2 = base.join("v2");
    irm.save_bins(&v2).unwrap();

    let v1 = base.join("v1");
    std::fs::create_dir_all(&v1).unwrap();
    transcribe_to_v1(&v2.join(PACK_FILE), &v1.join(PACK_FILE), |_, _| {});
    let head = std::fs::read(v1.join(PACK_FILE)).unwrap();
    assert_eq!(&head[..8], b"SMLSPAK1");

    // A warm session over the v1 archive: everything loads, nothing
    // recompiles, pids match the original build exactly.
    let mut warm = Irm::new(Strategy::Cutoff);
    let outcome = warm.load_bins(&v1).unwrap();
    assert_eq!(outcome.loaded, 3, "{:?}", outcome.corrupt);
    assert!(outcome.corrupt.is_empty(), "{:?}", outcome.corrupt);
    let report = warm.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 0, "{:?}", report.decisions);
    assert_eq!(export_pids(&warm), clean);

    // The clean no-op save must still rewrite: a legacy-format archive
    // never counts as synced.
    warm.save_bins(&v1).unwrap();
    let head = std::fs::read(v1.join(PACK_FILE)).unwrap();
    assert_eq!(&head[..8], b"SMLSPAK2", "archive upgraded on save");

    // And the upgraded archive round-trips.
    let mut again = Irm::new(Strategy::Cutoff);
    let outcome = again.load_bins(&v1).unwrap();
    assert_eq!(outcome.loaded, 3, "{:?}", outcome.corrupt);
    let report = again.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 0, "{:?}", report.decisions);
    assert_eq!(export_pids(&again), clean);
    std::fs::remove_dir_all(&base).ok();
}

/// Torn-body quarantine behaves identically across pack versions: a v1
/// body corrupted under its true digest is caught on first force, the
/// unit alone recompiles, and the save that follows writes a clean v2
/// archive.
#[test]
fn torn_v1_body_quarantines_and_upgrade_save_heals() {
    use smlsc_core::pack::PACK_FILE;
    let base = temp_dir("v1-torn");
    let p = project();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    let clean = export_pids(&irm);
    let v2 = base.join("v2");
    irm.save_bins(&v2).unwrap();

    let v1 = base.join("v1");
    std::fs::create_dir_all(&v1).unwrap();
    transcribe_to_v1(&v2.join(PACK_FILE), &v1.join(PACK_FILE), |name, body| {
        if name == "mid" {
            // Inside the JSON payload, past the SMLCBIN1 magic.
            let k = body.len() / 2;
            body[k] ^= 0xff;
        }
    });

    let collector = trace::Collector::new();
    collector.install();
    let mut session = Irm::new(Strategy::Cutoff);
    let outcome = session.load_bins(&v1).unwrap();
    assert_eq!(outcome.loaded, 3, "index loads; bodies verify lazily");
    // Linking forces every body; the corrupt v1 body is caught there.
    let (report, env) = session.execute(&p).unwrap();
    trace::uninstall();
    assert_eq!(env.len(), 3);
    assert_eq!(collector.counter(trace::names::BIN_BODY_QUARANTINED), 1);
    assert!(report.was_recompiled("mid"), "{:?}", report.decisions);
    assert_eq!(report.recompiled.len(), 1, "{:?}", report.decisions);
    assert_eq!(export_pids(&session), clean);

    session.save_bins(&v1).unwrap();
    let head = std::fs::read(v1.join(PACK_FILE)).unwrap();
    assert_eq!(&head[..8], b"SMLSPAK2");
    let mut again = Irm::new(Strategy::Cutoff);
    let outcome = again.load_bins(&v1).unwrap();
    assert_eq!(outcome.loaded, 3, "{:?}", outcome.corrupt);
    let report = again.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 0, "{:?}", report.decisions);
    std::fs::remove_dir_all(&base).ok();
}

/// The PR's acceptance property: a no-op warm build touches *no JSON
/// and no source text* on the hot path.  Stamps, pack index, and bin
/// bodies are all the binary wire format (checked by magic), the build
/// reads zero sources, and when bodies do rehydrate (execute), the
/// pickles stream through borrowed slices: `pickle.bytes` counts real
/// work while `rehydrate.allocs` stays zero.
#[test]
fn noop_warm_build_is_binary_end_to_end_and_allocation_free() {
    use smlsc_core::pack::PACK_FILE;
    let base = temp_dir("zero-json");
    let src = base.join("src");
    let bins = base.join("bins");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("base.sml"),
        "structure Base = struct val n = 10 end",
    )
    .unwrap();
    std::fs::write(
        src.join("mid.sml"),
        "structure Mid = struct val v = Base.n + 1 end",
    )
    .unwrap();
    std::fs::write(
        src.join("top.sml"),
        "structure Top = struct val t = Mid.v * 2 end",
    )
    .unwrap();

    let mut irm = Irm::new(Strategy::Cutoff);
    let p = Project::from_dir(&src).unwrap();
    irm.build(&p).unwrap();
    irm.save_bins(&bins).unwrap();
    irm.save_stamps(&bins.join("stamps.json")).unwrap();

    // Every persisted cache leads with its binary magic, not JSON.
    let stamps = std::fs::read(bins.join("stamps.json")).unwrap();
    assert_eq!(&stamps[..8], b"SMLSSTM2", "stamp cache is binary");
    let pack = std::fs::read(bins.join(PACK_FILE)).unwrap();
    assert_eq!(&pack[..8], b"SMLSPAK2", "pack index is binary");

    let collector = trace::Collector::new();
    collector.install();
    let mut warm = Irm::new(Strategy::Cutoff);
    warm.load_stamps(&bins.join("stamps.json"));
    warm.load_bins(&bins).unwrap();
    let p2 = Project::from_dir(&src).unwrap();
    let report = warm.build(&p2).unwrap();
    trace::uninstall();

    assert_eq!(report.recompiled.len(), 0, "{:?}", report.decisions);
    assert_eq!(collector.counter(trace::names::STAMP_HITS), 3);
    assert_eq!(collector.counter(trace::names::SOURCE_READS), 0);
    assert_eq!(collector.counter(trace::names::BIN_INDEX_ONLY), 3);
    assert_eq!(collector.counter(trace::names::BIN_LAZY_BODIES), 0);
    assert_eq!(
        collector.counter(trace::names::REHYDRATE_ALLOCS),
        0,
        "nothing rehydrated, nothing copied"
    );

    // A leaf edit makes `top` recompile, which rehydrates its import's
    // pickled env — still without copying a single string or byte
    // buffer out of the pickle.
    std::fs::write(
        src.join("top.sml"),
        "structure Top = struct val t = Mid.v * 3 end",
    )
    .unwrap();
    let collector = trace::Collector::new();
    collector.install();
    let p3 = Project::from_dir(&src).unwrap();
    let report = warm.build(&p3).unwrap();
    trace::uninstall();
    assert_eq!(report.recompiled.len(), 1, "{:?}", report.decisions);
    assert!(
        collector.counter(trace::names::PICKLE_BYTES) > 0,
        "pickles were actually parsed"
    );
    assert_eq!(
        collector.counter(trace::names::REHYDRATE_ALLOCS),
        0,
        "rehydration is allocation-free over borrowed slices"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// A rename preserves (mtime, size) and content exactly — the
/// adversarial case for a stamp cache.  The stamp is keyed by path and
/// unit name, so the renamed file must re-digest, and the deps cache
/// (keyed by unit) must never serve the old unit's analysis.
#[test]
fn renamed_file_never_serves_stale_stamps_or_analysis() {
    let base = temp_dir("rename");
    let src = base.join("src");
    let bins = base.join("bins");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(src.join("a.sml"), "structure A = struct val n = 1 end").unwrap();

    let mut irm = Irm::new(Strategy::Cutoff);
    let p = Project::from_dir(&src).unwrap();
    irm.build(&p).unwrap();
    irm.save_bins(&bins).unwrap();
    irm.save_stamps(&bins.join("stamps.json")).unwrap();

    std::fs::rename(src.join("a.sml"), src.join("b.sml")).unwrap();

    let collector = trace::Collector::new();
    collector.install();
    let mut warm = Irm::new(Strategy::Cutoff);
    warm.load_stamps(&bins.join("stamps.json"));
    warm.load_bins(&bins).unwrap();
    let p2 = Project::from_dir(&src).unwrap();
    let report = warm.build(&p2).unwrap();
    trace::uninstall();

    assert_eq!(collector.counter(trace::names::STAMP_HITS), 0);
    assert!(report.was_recompiled("b"), "{:?}", report.decisions);
    assert!(matches!(report.decisions[0], (_, RebuildDecision::NewUnit)));
    assert!(warm.bin_meta("b").is_some());
    std::fs::remove_dir_all(&base).ok();
}

// ---------------------------------------------------------------------
// The 4-configuration equivalence property.
// ---------------------------------------------------------------------

/// One of the four warm-build configurations under test.
#[derive(Clone, Copy)]
struct Config {
    /// Distrust stamps: re-read and re-digest every source.
    paranoid: bool,
    /// Persist bins as the indexed archive (vs legacy per-unit files).
    pack: bool,
}

const CONFIGS: [Config; 4] = [
    Config {
        paranoid: false,
        pack: true,
    }, // the fast path
    Config {
        paranoid: false,
        pack: false,
    },
    Config {
        paranoid: true,
        pack: true,
    },
    Config {
        paranoid: true,
        pack: false,
    }, // the eager baseline
];

/// Mirrors the workload's current sources into `src` as real files.
fn write_sources(src: &Path, w: &Workload) {
    for i in 0..w.module_count() {
        let name = module_name(i);
        let text = w.project().file(&name).unwrap().read_text().unwrap();
        std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
    }
}

/// Per-unit (name, source pid, export pid) observed after a build.
type UnitPids = Vec<(String, Pid, Pid)>;

/// Runs one cold-process build session for `cfg` against the sources in
/// `src`, persisting bins and stamps under `bin_dir`, and returns the
/// decision sequence plus every unit's (source pid, export pid).
fn session_step(
    cfg: Config,
    src: &Path,
    bin_dir: &Path,
    n: usize,
) -> (Vec<(String, RebuildDecision)>, UnitPids) {
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.set_paranoid(cfg.paranoid);
    let stamps = bin_dir.join("stamps.json");
    irm.load_stamps(&stamps);
    if bin_dir.is_dir() {
        let outcome = irm.load_bins(bin_dir).unwrap();
        assert!(outcome.corrupt.is_empty(), "{:?}", outcome.corrupt);
    }
    let project = Project::from_dir(src).unwrap();
    let report = irm.build(&project).unwrap();
    let decisions = report
        .decisions
        .iter()
        .map(|(s, d)| (s.to_string(), d.clone()))
        .collect();
    if cfg.pack {
        irm.save_bins(bin_dir).unwrap();
    } else {
        irm.save_bins_files(bin_dir).unwrap();
    }
    irm.save_stamps(&stamps).unwrap();
    let pids = (0..n)
        .map(|i| {
            let name = module_name(i);
            let meta = irm.bin_meta(&name).expect("built unit has a bin");
            (name, meta.source_pid, meta.export_pid)
        })
        .collect();
    (decisions, pids)
}

use proptest::strategy::Strategy as PropStrategy;

fn arb_edit() -> impl PropStrategy<Value = EditKind> {
    prop_oneof![
        Just(EditKind::CommentOnly),
        Just(EditKind::BodyOnly),
        Just(EditKind::InterfaceAdd),
        Just(EditKind::InterfaceChangeType),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Over any seeded edit history, all four configurations —
    /// {stamped, paranoid} × {indexed archive, legacy per-file bins} —
    /// produce bit-identical source/export pids and the exact same
    /// `RebuildDecision` sequence at every step.
    #[test]
    fn warm_paths_agree_with_the_eager_paranoid_baseline(
        seed in any::<u64>(),
        edits in proptest::collection::vec((any::<u16>(), arb_edit()), 1..4),
    ) {
        let spec = WorkloadSpec {
            topology: Topology::Library { lib: 2, clients: 3, seed },
            funs_per_module: 1,
            reexport_dep_types: false,
        };
        let mut w = Workload::new(spec);
        let n = w.module_count();
        let base = temp_dir("equiv");
        let src = base.join("src");
        std::fs::create_dir_all(&src).unwrap();
        let bin_dirs: Vec<PathBuf> = (0..CONFIGS.len()).map(|i| base.join(format!("cfg{i}"))).collect();
        write_sources(&src, &w);

        for step in 0..=edits.len() {
            if step > 0 {
                let (victim, kind) = edits[step - 1];
                w.edit(victim as usize % n, kind);
                write_sources(&src, &w);
            }
            let results: Vec<_> = CONFIGS
                .iter()
                .zip(&bin_dirs)
                .map(|(cfg, dir)| session_step(*cfg, &src, dir, n))
                .collect();
            for (i, r) in results.iter().enumerate().skip(1) {
                prop_assert_eq!(
                    &r.0, &results[0].0,
                    "step {}: config {} decisions diverged from the fast path", step, i
                );
                prop_assert_eq!(
                    &r.1, &results[0].1,
                    "step {}: config {} pids diverged from the fast path", step, i
                );
            }
            // On the no-op step 0 re-check below, the fast path must
            // also *reuse* everything (sanity that the cache persists).
        }

        // One final no-op step: every configuration reuses every unit.
        for (cfg, dir) in CONFIGS.iter().zip(&bin_dirs) {
            let (decisions, _) = session_step(*cfg, &src, dir, n);
            prop_assert!(
                decisions.iter().all(|(_, d)| !d.requires_recompile()),
                "no-op rebuild recompiled something: {:?}", decisions
            );
        }
        std::fs::remove_dir_all(&base).ok();
    }
}
