//! Realistic mini-SML programs, compiled and executed through the full
//! pipeline — the kind of code the paper's users would have written.

use smlsc::core::irm::{Irm, Project, Strategy};
use smlsc::core::stdlib::add_stdlib;
use smlsc::dynamics::value::Value;
use smlsc::ids::Symbol;

fn run(p: &Project) -> smlsc::core::DynEnv {
    let mut irm = Irm::new(Strategy::Cutoff);
    let (_, env) = irm.execute(p).unwrap_or_else(|e| panic!("{e}"));
    env
}

fn field(env: &smlsc::core::DynEnv, unit: &str, str_slot: usize, val_slot: usize) -> Value {
    let linked = env.get(Symbol::intern(unit)).expect("linked");
    let Value::Record(units) = &linked.values else {
        panic!()
    };
    let Value::Record(fields) = &units[str_slot] else {
        panic!()
    };
    fields[val_slot].clone()
}

#[test]
fn binary_search_tree_via_functor() {
    let mut p = Project::new();
    p.add(
        "ord",
        "signature ORDERED = sig
           type t
           val compare : t * t -> int   (* <0, 0, >0 *)
         end
         structure IntOrd : ORDERED = struct
           type t = int
           fun compare (a, b) = a - b
         end",
    );
    p.add(
        "bst",
        "functor Bst (K : ORDERED) = struct
           datatype tree = Leaf | Node of tree * K.t * tree
           val empty = Leaf
           fun insert (Leaf, k) = Node (Leaf, k, Leaf)
             | insert (t as Node (l, x, r), k) =
                 if K.compare (k, x) < 0 then Node (insert (l, k), x, r)
                 else if K.compare (k, x) > 0 then Node (l, x, insert (r, k))
                 else t
           fun member (Leaf, _) = false
             | member (Node (l, x, r), k) =
                 if K.compare (k, x) < 0 then member (l, k)
                 else if K.compare (k, x) > 0 then member (r, k)
                 else true
           fun inorder Leaf = []
             | inorder (Node (l, x, r)) = inorder l @ (x :: inorder r)
           fun fromList l = let
             fun go (acc, []) = acc
               | go (acc, k :: ks) = go (insert (acc, k), ks)
           in go (empty, l) end
         end",
    );
    p.add(
        "use_bst",
        "structure IntTree = Bst(IntOrd)
         structure Demo = struct
           val t = IntTree.fromList [5, 3, 8, 1, 4, 8, 3]
           val sorted = IntTree.inorder t
           val has4 = IntTree.member (t, 4)
           val has9 = IntTree.member (t, 9)
         end",
    );
    let env = run(&p);
    // use_bst exports IntTree (slot 0) and Demo (slot 1).
    assert_eq!(
        field(&env, "use_bst", 1, 1),
        Value::list(vec![
            Value::Int(1),
            Value::Int(3),
            Value::Int(4),
            Value::Int(5),
            Value::Int(8)
        ])
    );
    assert_eq!(field(&env, "use_bst", 1, 2), Value::bool(true));
    assert_eq!(field(&env, "use_bst", 1, 3), Value::bool(false));
}

#[test]
fn expression_evaluator_with_environments() {
    let mut p = Project::new();
    add_stdlib(&mut p);
    p.add(
        "expr",
        r#"structure Expr = struct
             datatype exp =
               Num of int
             | Var of string
             | Add of exp * exp
             | Mul of exp * exp
             | Let of string * exp * exp

             exception Unbound of string

             fun lookup (name, []) = raise Unbound name
               | lookup (name, (n, v) :: rest) =
                   if n = name then v else lookup (name, rest)

             fun eval env (Num n) = n
               | eval env (Var x) = lookup (x, env)
               | eval env (Add (a, b)) = eval env a + eval env b
               | eval env (Mul (a, b)) = eval env a * eval env b
               | eval env (Let (x, e, body)) =
                   eval ((x, eval env e) :: env) body
           end"#,
    );
    p.add(
        "calc",
        r#"structure Calc = struct
             open Expr
             (* let x = 3 in let y = x * 4 in x + y *)
             val program =
               Let ("x", Num 3,
                 Let ("y", Mul (Var "x", Num 4),
                   Add (Var "x", Var "y")))
             val result = eval [] program
             val oops = (eval [] (Var "ghost")) handle Unbound _ => ~1
           end"#,
    );
    let env = run(&p);
    // Calc's slots: Unbound, lookup, eval (spliced by `open Expr`), then
    // program, result, oops.
    assert_eq!(field(&env, "calc", 0, 4), Value::Int(15));
    assert_eq!(field(&env, "calc", 0, 5), Value::Int(-1));
}

#[test]
fn polymorphic_queue_behind_an_opaque_signature() {
    let mut p = Project::new();
    p.add(
        "queue",
        "structure Queue :> sig
           type 'a queue
           val empty : 'a queue
           val push : 'a * 'a queue -> 'a queue
           val pop : 'a queue -> ('a * 'a queue) option
         end = struct
           type 'a queue = 'a list * 'a list
           val empty = ([], [])
           fun push (x, (front, back)) = (front, x :: back)
           fun rev l = let fun go acc [] = acc | go acc (x :: xs) = go (x :: acc) xs
                       in go [] l end
           fun pop ([], []) = NONE
             | pop ([], back) = pop (rev back, [])
             | pop (x :: front, back) = SOME (x, (front, back))
         end",
    );
    p.add(
        "use_queue",
        "structure Demo = struct
           val q = Queue.push (3, Queue.push (2, Queue.push (1, Queue.empty)))
           val (first, q2) = case Queue.pop q of SOME r => r | NONE => (0, Queue.empty)
           val (second, _) = case Queue.pop q2 of SOME r => r | NONE => (0, Queue.empty)
         end",
    );
    let env = run(&p);
    assert_eq!(field(&env, "use_queue", 0, 1), Value::Int(1), "FIFO order");
    assert_eq!(field(&env, "use_queue", 0, 3), Value::Int(2));
}

#[test]
fn editing_the_bst_rebalancing_cuts_off() {
    // The BST project, then a body-only change to `insert` (different
    // tie-breaking) — only `bst` recompiles.
    let mut p = Project::new();
    p.add(
        "ord",
        "signature ORDERED = sig type t val compare : t * t -> int end
         structure IntOrd : ORDERED = struct type t = int fun compare (a, b) = a - b end",
    );
    p.add(
        "bst",
        "functor Bst (K : ORDERED) = struct
           datatype tree = Leaf | Node of tree * K.t * tree
           fun insert (Leaf, k) = Node (Leaf, k, Leaf)
             | insert (t as Node (l, x, r), k) =
                 if K.compare (k, x) < 0 then Node (insert (l, k), x, r)
                 else Node (l, x, insert (r, k))
         end",
    );
    p.add("use_bst", "structure T = Bst(IntOrd)");
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    p.edit(
        "bst",
        "functor Bst (K : ORDERED) = struct
           datatype tree = Leaf | Node of tree * K.t * tree
           fun insert (Leaf, k) = Node (Leaf, k, Leaf)
             | insert (t as Node (l, x, r), k) =
                 if K.compare (k, x) > 0 then Node (l, x, insert (r, k))
                 else Node (insert (l, k), x, r)
         end",
    )
    .unwrap();
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 1, "{:?}", report.recompiled);
}
