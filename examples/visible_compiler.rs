//! The Visible Compiler (§7): the interactive read-eval-print loop as a
//! client of the separate-compilation primitives.
//!
//! Every input is compiled as an anonymous unit against the layered
//! static environments of previous inputs, hashed, executed, and layered.
//! Run with `cargo run --example visible_compiler`.

use smlsc::core::session::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();

    let inputs = [
        "structure Acc = struct
           fun fold f acc [] = acc
             | fold f acc (x :: xs) = fold f (f (acc, x)) xs
         end",
        "structure Stats = struct
           fun total l = Acc.fold (fn (a, x) => a + x) 0 l
           fun count l = Acc.fold (fn (a, _) => a + 1) 0 l
         end",
        "structure Run = struct
           val xs = [10, 20, 30, 42]
           val sum = Stats.total xs
           val n = Stats.count xs
         end",
        // Shadowing: a new Stats layer; old Run keeps its values.
        "structure Stats = struct
           fun total l = Acc.fold (fn (a, x) => a + x * 2) 0 l
           fun count l = Acc.fold (fn (a, _) => a + 1) 0 l
         end",
        "structure Run2 = struct
           val sum = Stats.total [1, 2, 3]
         end",
    ];

    for (i, src) in inputs.iter().enumerate() {
        let out = session.eval(src)?;
        println!("[{i}] unit {} (export pid {})", out.unit, out.export_pid);
        for b in &out.bindings {
            println!("    {b}");
        }
    }

    println!();
    println!("Run.sum  = {}", session.show_value("Run", "sum")?);
    println!("Run.n    = {}", session.show_value("Run", "n")?);
    println!(
        "Run2.sum = {} (uses the shadowing Stats)",
        session.show_value("Run2", "sum")?
    );

    // Errors leave the session intact.
    let err = session
        .eval("structure Broken = struct val x = Stats.missing end")
        .unwrap_err();
    println!("\nrejected input: {err}");
    println!("session still has {} layers", session.len());

    // §6's future work, implemented: load *binary* compiled units from
    // the IRM into a fresh interactive session.
    use smlsc::core::irm::{Irm, Project, Strategy};
    let mut project = Project::new();
    project.add("geom", "structure Geom = struct fun sq x = x * x end");
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut s2 = smlsc::core::session::Session::new();
    s2.load_compiled(&mut irm, &project)?;
    s2.eval("structure Use = struct val v = Geom.sq 9 end")?;
    println!(
        "\nloaded compiled bins into a session: Use.v = {}",
        s2.show_value("Use", "v")?
    );
    Ok(())
}
