//! §10's "fully functorized style": true separate compilation.
//!
//! The paper notes (footnote 1, §10.1) that a client can decouple itself
//! from its imports by abstracting over them as functor parameters: the
//! client then compiles against *signatures only*, and editing the
//! implementation — even its interface, as long as it still matches the
//! signature — never recompiles the client.  The cost is that the
//! implementation's types are no longer transparent inside the client.
//!
//! Run with `cargo run --example functorized_style`.

use smlsc::core::irm::{Irm, Project, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut project = Project::new();
    // The only shared unit: the signature.
    project.add(
        "store_sig",
        "signature STORE = sig
           type store
           val empty : store
           val put : store * int -> store
           val total : store -> int
         end",
    );
    // A client in fully-functorized style: depends on store_sig ONLY.
    project.add(
        "client",
        "functor Client (S : STORE) = struct
           fun fill (s, 0) = s
             | fill (s, n) = fill (S.put (s, n), n - 1)
           val result = S.total (fill (S.empty, 10))
         end",
    );
    // The implementation, and the link-time instantiation.
    project.add(
        "store_impl",
        "structure ListStore :> STORE = struct
           type store = int list
           val empty = []
           fun put (s, x) = x :: s
           fun total [] = 0
             | total (x :: xs) = x + total xs
         end",
    );
    project.add("link", "structure App = Client(ListStore)");

    let mut irm = Irm::new(Strategy::Cutoff);
    let (report, _env) = irm.execute(&project)?;
    println!(
        "initial build: {:?}",
        report.order.iter().map(|s| s.as_str()).collect::<Vec<_>>()
    );

    // Replace the implementation entirely — different representation,
    // still matching STORE.  The client does NOT recompile: it depends
    // only on the signature.
    project.edit(
        "store_impl",
        "structure ListStore :> STORE = struct
           type store = int        (* a running sum instead of a list *)
           val empty = 0
           fun put (s, x) = s + x
           fun total s = s
         end",
    )?;
    let (report, _env) = irm.execute(&project)?;
    println!(
        "after swapping the implementation: recompiled {:?}",
        report
            .recompiled
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
    );
    assert!(
        !report.was_recompiled("client"),
        "the functorized client must be isolated from the implementation"
    );
    println!("client untouched: true separate compilation via functors (§10)");
    Ok(())
}
