//! Cutoff recompilation vs. `make` vs. classical, on a generated
//! 50-module library workload — the paper's central claim, live.
//!
//! Run with `cargo run --example cutoff_vs_make`.

use smlsc::core::irm::{Irm, Strategy};
use smlsc::workload::{EditKind, Topology, Workload, WorkloadSpec};

fn fresh() -> Workload {
    Workload::new(WorkloadSpec {
        topology: Topology::Library {
            lib: 12,
            clients: 38,
            seed: 2026,
        },
        funs_per_module: 4,
        reexport_dep_types: false,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "workload: 50 modules, {} source lines\n",
        fresh().total_lines()
    );
    println!(
        "{:<22} {:>8} {:>10} {:>10}",
        "edit", "cutoff", "timestamp", "classical"
    );

    for (label, kind) in [
        ("comment only", EditKind::CommentOnly),
        ("function body", EditKind::BodyOnly),
        ("new export", EditKind::InterfaceAdd),
        ("type change", EditKind::InterfaceChangeType),
    ] {
        let mut row = Vec::new();
        for strategy in [Strategy::Cutoff, Strategy::Timestamp, Strategy::Classical] {
            let mut w = fresh();
            let victim = w.most_depended_on();
            let mut irm = Irm::new(strategy);
            irm.build(w.project())?;
            w.edit(victim, kind);
            let report = irm.build(w.project())?;
            row.push(report.recompiled.len());
        }
        println!("{:<22} {:>8} {:>10} {:>10}", label, row[0], row[1], row[2]);
    }

    println!("\n(units recompiled after editing the most-depended-on module)");
    Ok(())
}
