//! Type-safe linkage (§5): the "makefile bug" that cannot happen.
//!
//! Under timestamp-based building, clock skew (or a missing makefile
//! dependency) can leave a dependent's bin stale after an interface
//! change; classical systems would link the inconsistent program and
//! crash at runtime.  Here the linker compares the import pid recorded in
//! the bin with the current export pid and refuses.  Under cutoff the
//! same skew is harmless because mtimes are never consulted.
//!
//! Run with `cargo run --example makefile_bug`.

use smlsc::core::irm::{Irm, Project, Strategy};
use smlsc::core::unit::BinFile;

fn project() -> Project {
    let mut p = Project::new();
    p.add("config", "structure Config = struct val limit = 10 end");
    p.add(
        "engine",
        "structure Engine = struct fun run x = if x < Config.limit then x else Config.limit end",
    );
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- timestamp manager + clock skew ---
    let mut make = Irm::new(Strategy::Timestamp);
    let mut p = project();
    make.build(&p)?;

    // Interface change: limit is renamed.
    p.edit(
        "config",
        "structure Config = struct val maxValue = 10 val limit = 10 end",
    )?;
    // Clock skew: engine's bin claims to be newer than everything.
    let mut skewed: BinFile = make.bin("engine").expect("built").clone();
    skewed.mtime = u64::MAX;
    make.inject_bin(skewed.clone());

    match make.execute(&p) {
        Err(e) => println!("timestamp build with clock skew: REFUSED BY LINKER\n  {e}\n"),
        Ok(_) => println!("unexpected: stale program linked!"),
    }

    // --- cutoff manager, same skew ---
    let mut cutoff = Irm::new(Strategy::Cutoff);
    let mut p = project();
    cutoff.build(&p)?;
    p.edit(
        "config",
        "structure Config = struct val maxValue = 10 val limit = 10 end",
    )?;
    let mut skewed: BinFile = cutoff.bin("engine").expect("built").clone();
    skewed.mtime = u64::MAX;
    cutoff.inject_bin(skewed);

    let (report, _env) = cutoff.execute(&p)?;
    println!(
        "cutoff build with the same skew: recompiled {:?} and linked cleanly",
        report
            .recompiled
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
    );
    println!("(cutoff never consults mtimes; the changed import pid forces the rebuild)");
    Ok(())
}
