//! Quickstart: build a small project with the IRM, edit a module, and
//! watch cutoff recompilation skip the unaffected units.
//!
//! Run with `cargo run --example quickstart`.

use smlsc::core::irm::{Irm, Project, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut project = Project::new();
    project.add(
        "list_util",
        "structure ListUtil = struct
           fun length [] = 0
             | length (_ :: xs) = 1 + length xs
           fun sum [] = 0
             | sum (x :: xs) = x + sum xs
         end",
    );
    project.add(
        "stats",
        "structure Stats = struct
           fun mean l = ListUtil.sum l div ListUtil.length l
         end",
    );
    project.add(
        "main",
        "structure Main = struct
           val data = [3, 5, 7, 9]
           val avg = Stats.mean data
         end",
    );

    let mut irm = Irm::new(Strategy::Cutoff);

    println!("== initial build ==");
    let (report, env) = irm.execute(&project)?;
    println!(
        "compiled {} units in order {:?}",
        report.recompiled.len(),
        report.order.iter().map(|s| s.as_str()).collect::<Vec<_>>()
    );
    print_main(&env);

    println!("\n== body edit to list_util (interface unchanged) ==");
    project.edit(
        "list_util",
        "structure ListUtil = struct
           fun length [] = 0
             | length (_ :: xs) = 1 + length xs
           local
             (* sum is now accumulator-based; the helper stays local so
                the exported interface is untouched *)
             fun sumAcc acc [] = acc
               | sumAcc acc (x :: xs) = sumAcc (acc + x) xs
           in
             fun sum l = sumAcc 0 l
           end
         end",
    )?;
    let (report, env) = irm.execute(&project)?;
    println!(
        "recompiled: {:?}  reused: {:?}",
        report
            .recompiled
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
        report.reused.iter().map(|s| s.as_str()).collect::<Vec<_>>()
    );
    print_main(&env);

    println!("\n== comment edit to stats ==");
    project.edit(
        "stats",
        "(* documentation only *)
         structure Stats = struct
           fun mean l = ListUtil.sum l div ListUtil.length l
         end",
    )?;
    let report = irm.build(&project)?;
    println!(
        "recompiled: {:?} (cutoff: the interface hash did not change)",
        report
            .recompiled
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
    );
    Ok(())
}

fn print_main(env: &smlsc::core::DynEnv) {
    use smlsc::dynamics::value::Value;
    let main = env
        .get(smlsc::ids::Symbol::intern("main"))
        .expect("main is linked");
    let Value::Record(units) = &main.values else {
        return;
    };
    let Value::Record(fields) = &units[0] else {
        return;
    };
    // Slots: data, avg (in declaration order).
    println!("Main.avg = {}", fields[1]);
}
