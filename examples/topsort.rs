//! Figure 1 of the paper, end to end: transparent functor application.
//!
//! `FSort = TopSort(Factors)` — because ML signature matching is
//! transparent, clients see `FSort.t = int` and can apply `FSort.sort`
//! to an int list directly.  The example also demonstrates that the
//! three units separately compile, that editing `TopSort`'s body leaves
//! both other units' bins valid, and that the result actually runs.
//!
//! Run with `cargo run --example topsort`.

use smlsc::core::irm::{Irm, Project, Strategy};
use smlsc::dynamics::value::Value;
use smlsc::ids::Symbol;

const SORTING: &str = "
signature PARTIAL_ORDER = sig
  type elem
  val less : elem * elem -> bool
end

signature SORT = sig
  type t
  val sort : t list -> t list
end

functor TopSort (P : PARTIAL_ORDER) : SORT = struct
  type t = P.elem
  fun insert (x, []) = [x]
    | insert (x, y :: ys) =
        if P.less (x, y) then x :: y :: ys else y :: insert (x, ys)
  fun sort [] = []
    | sort (x :: xs) = insert (x, sort xs)
end
";

const FACTORS: &str = "
structure Factors : PARTIAL_ORDER = struct
  type elem = int
  fun less (i, j) = (j mod i) = 0
end
";

const FSORT: &str = "
structure FSort : SORT = TopSort(Factors)

structure Demo = struct
  (* FSort.t = int is visible: the literal list type-checks. *)
  val input  = [12, 3, 48, 6, 24]
  val sorted = FSort.sort input
end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut project = Project::new();
    project.add("sorting", SORTING);
    project.add("factors", FACTORS);
    project.add("fsort", FSORT);

    let mut irm = Irm::new(Strategy::Cutoff);
    let (report, env) = irm.execute(&project)?;
    println!(
        "built {:?}",
        report.order.iter().map(|s| s.as_str()).collect::<Vec<_>>()
    );

    let fsort = env.get(Symbol::intern("fsort")).expect("linked");
    let Value::Record(units) = &fsort.values else {
        unreachable!()
    };
    // fsort's export record: FSort (slot 0), Demo (slot 1).
    let Value::Record(demo) = &units[1] else {
        unreachable!()
    };
    println!("Demo.input  = {}", demo[0]);
    println!("Demo.sorted = {} (ordered by divisibility)", demo[1]);

    // A body edit to the functor: only `sorting` recompiles.
    let mut edited = SORTING.replace(
        "if P.less (x, y) then x :: y :: ys else y :: insert (x, ys)",
        "if P.less (y, x) then y :: insert (x, ys) else x :: y :: ys",
    );
    edited.push_str("(* reversed comparison in insert *)\n");
    project.edit("sorting", edited)?;
    let report = irm.build(&project)?;
    println!(
        "after a functor body edit, recompiled: {:?}",
        report
            .recompiled
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
    );
    assert_eq!(report.recompiled.len(), 1, "cutoff holds");
    Ok(())
}
