/root/repo/target/debug/deps/serde_json-c91bb0042fece770.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c91bb0042fece770.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
