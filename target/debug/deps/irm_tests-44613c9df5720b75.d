/root/repo/target/debug/deps/irm_tests-44613c9df5720b75.d: crates/core/tests/irm_tests.rs

/root/repo/target/debug/deps/irm_tests-44613c9df5720b75: crates/core/tests/irm_tests.rs

crates/core/tests/irm_tests.rs:
