/root/repo/target/debug/deps/micro-7d09932b34ddf392.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-7d09932b34ddf392.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
