/root/repo/target/debug/deps/paper_tables-ae751339ec1b795e.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/libpaper_tables-ae751339ec1b795e.rmeta: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
