/root/repo/target/debug/deps/smlsc_pickle-220f2f8ae0afe23b.d: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs

/root/repo/target/debug/deps/libsmlsc_pickle-220f2f8ae0afe23b.rmeta: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs

crates/pickle/src/lib.rs:
crates/pickle/src/context.rs:
crates/pickle/src/dehydrate.rs:
crates/pickle/src/rehydrate.rs:
crates/pickle/src/testing.rs:
crates/pickle/src/wire.rs:
