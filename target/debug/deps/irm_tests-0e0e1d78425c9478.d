/root/repo/target/debug/deps/irm_tests-0e0e1d78425c9478.d: crates/core/tests/irm_tests.rs

/root/repo/target/debug/deps/irm_tests-0e0e1d78425c9478: crates/core/tests/irm_tests.rs

crates/core/tests/irm_tests.rs:
