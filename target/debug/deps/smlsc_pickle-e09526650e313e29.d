/root/repo/target/debug/deps/smlsc_pickle-e09526650e313e29.d: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs

/root/repo/target/debug/deps/libsmlsc_pickle-e09526650e313e29.rlib: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs

/root/repo/target/debug/deps/libsmlsc_pickle-e09526650e313e29.rmeta: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs

crates/pickle/src/lib.rs:
crates/pickle/src/context.rs:
crates/pickle/src/dehydrate.rs:
crates/pickle/src/rehydrate.rs:
crates/pickle/src/testing.rs:
crates/pickle/src/wire.rs:
