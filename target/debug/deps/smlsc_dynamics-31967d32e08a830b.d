/root/repo/target/debug/deps/smlsc_dynamics-31967d32e08a830b.d: crates/dynamics/src/lib.rs crates/dynamics/src/eval.rs crates/dynamics/src/ir.rs crates/dynamics/src/value.rs

/root/repo/target/debug/deps/smlsc_dynamics-31967d32e08a830b: crates/dynamics/src/lib.rs crates/dynamics/src/eval.rs crates/dynamics/src/ir.rs crates/dynamics/src/value.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/eval.rs:
crates/dynamics/src/ir.rs:
crates/dynamics/src/value.rs:
