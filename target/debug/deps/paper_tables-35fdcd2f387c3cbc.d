/root/repo/target/debug/deps/paper_tables-35fdcd2f387c3cbc.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-35fdcd2f387c3cbc: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
