/root/repo/target/debug/deps/groups-4cc6b049313b9b22.d: tests/groups.rs

/root/repo/target/debug/deps/groups-4cc6b049313b9b22: tests/groups.rs

tests/groups.rs:
