/root/repo/target/debug/deps/smlsc-d90bc7edfcf0af85.d: crates/smlsc/src/lib.rs

/root/repo/target/debug/deps/libsmlsc-d90bc7edfcf0af85.rmeta: crates/smlsc/src/lib.rs

crates/smlsc/src/lib.rs:
