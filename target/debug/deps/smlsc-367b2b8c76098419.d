/root/repo/target/debug/deps/smlsc-367b2b8c76098419.d: crates/smlsc/src/lib.rs

/root/repo/target/debug/deps/libsmlsc-367b2b8c76098419.rmeta: crates/smlsc/src/lib.rs

crates/smlsc/src/lib.rs:
