/root/repo/target/debug/deps/cli-60086bdcff069182.d: crates/smlsc/tests/cli.rs

/root/repo/target/debug/deps/libcli-60086bdcff069182.rmeta: crates/smlsc/tests/cli.rs

crates/smlsc/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_smlsc=placeholder:smlsc
