/root/repo/target/debug/deps/smlsc-e7ba3899e598ebae.d: crates/smlsc/src/bin/smlsc.rs

/root/repo/target/debug/deps/libsmlsc-e7ba3899e598ebae.rmeta: crates/smlsc/src/bin/smlsc.rs

crates/smlsc/src/bin/smlsc.rs:
