/root/repo/target/debug/deps/smlsc_syntax-23f20c75d9936f81.d: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/deps.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/printer.rs

/root/repo/target/debug/deps/libsmlsc_syntax-23f20c75d9936f81.rmeta: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/deps.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/printer.rs

crates/syntax/src/lib.rs:
crates/syntax/src/ast.rs:
crates/syntax/src/deps.rs:
crates/syntax/src/lexer.rs:
crates/syntax/src/parser.rs:
crates/syntax/src/printer.rs:
