/root/repo/target/debug/deps/smlsc-f0ecf0a8ae3d342e.d: crates/smlsc/src/lib.rs

/root/repo/target/debug/deps/smlsc-f0ecf0a8ae3d342e: crates/smlsc/src/lib.rs

crates/smlsc/src/lib.rs:
