/root/repo/target/debug/deps/smlsc_pickle-b110af7cf52ea062.d: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs

/root/repo/target/debug/deps/smlsc_pickle-b110af7cf52ea062: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs

crates/pickle/src/lib.rs:
crates/pickle/src/context.rs:
crates/pickle/src/dehydrate.rs:
crates/pickle/src/rehydrate.rs:
crates/pickle/src/testing.rs:
crates/pickle/src/wire.rs:
