/root/repo/target/debug/deps/paper_tables-3b93172aacb0d963.d: crates/bench/src/bin/paper_tables.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_tables-3b93172aacb0d963.rmeta: crates/bench/src/bin/paper_tables.rs Cargo.toml

crates/bench/src/bin/paper_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
