/root/repo/target/debug/deps/smlsc_ids-ff6188101842d435.d: crates/ids/src/lib.rs crates/ids/src/digest.rs crates/ids/src/stamp.rs crates/ids/src/symbol.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_ids-ff6188101842d435.rmeta: crates/ids/src/lib.rs crates/ids/src/digest.rs crates/ids/src/stamp.rs crates/ids/src/symbol.rs Cargo.toml

crates/ids/src/lib.rs:
crates/ids/src/digest.rs:
crates/ids/src/stamp.rs:
crates/ids/src/symbol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
