/root/repo/target/debug/deps/smlsc_statics-aab22294872489c4.d: crates/statics/src/lib.rs crates/statics/src/elab/mod.rs crates/statics/src/elab/core.rs crates/statics/src/elab/modules.rs crates/statics/src/env.rs crates/statics/src/error.rs crates/statics/src/matchcomp.rs crates/statics/src/pervasive.rs crates/statics/src/realize.rs crates/statics/src/sigmatch.rs crates/statics/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_statics-aab22294872489c4.rmeta: crates/statics/src/lib.rs crates/statics/src/elab/mod.rs crates/statics/src/elab/core.rs crates/statics/src/elab/modules.rs crates/statics/src/env.rs crates/statics/src/error.rs crates/statics/src/matchcomp.rs crates/statics/src/pervasive.rs crates/statics/src/realize.rs crates/statics/src/sigmatch.rs crates/statics/src/types.rs Cargo.toml

crates/statics/src/lib.rs:
crates/statics/src/elab/mod.rs:
crates/statics/src/elab/core.rs:
crates/statics/src/elab/modules.rs:
crates/statics/src/env.rs:
crates/statics/src/error.rs:
crates/statics/src/matchcomp.rs:
crates/statics/src/pervasive.rs:
crates/statics/src/realize.rs:
crates/statics/src/sigmatch.rs:
crates/statics/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
