/root/repo/target/debug/deps/smlsc_bench-ffe9eee8dd61514b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmlsc_bench-ffe9eee8dd61514b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmlsc_bench-ffe9eee8dd61514b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
