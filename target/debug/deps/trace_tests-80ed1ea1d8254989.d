/root/repo/target/debug/deps/trace_tests-80ed1ea1d8254989.d: crates/trace/tests/trace_tests.rs

/root/repo/target/debug/deps/trace_tests-80ed1ea1d8254989: crates/trace/tests/trace_tests.rs

crates/trace/tests/trace_tests.rs:
