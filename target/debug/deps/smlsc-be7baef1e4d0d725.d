/root/repo/target/debug/deps/smlsc-be7baef1e4d0d725.d: crates/smlsc/src/lib.rs

/root/repo/target/debug/deps/libsmlsc-be7baef1e4d0d725.rlib: crates/smlsc/src/lib.rs

/root/repo/target/debug/deps/libsmlsc-be7baef1e4d0d725.rmeta: crates/smlsc/src/lib.rs

crates/smlsc/src/lib.rs:
