/root/repo/target/debug/deps/build-4f550da6762cbdf1.d: crates/workload/tests/build.rs

/root/repo/target/debug/deps/build-4f550da6762cbdf1: crates/workload/tests/build.rs

crates/workload/tests/build.rs:
