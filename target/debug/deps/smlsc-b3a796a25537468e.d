/root/repo/target/debug/deps/smlsc-b3a796a25537468e.d: crates/smlsc/src/bin/smlsc.rs

/root/repo/target/debug/deps/libsmlsc-b3a796a25537468e.rmeta: crates/smlsc/src/bin/smlsc.rs

crates/smlsc/src/bin/smlsc.rs:
