/root/repo/target/debug/deps/smlsc_ids-c492131fa24ff098.d: crates/ids/src/lib.rs crates/ids/src/digest.rs crates/ids/src/stamp.rs crates/ids/src/symbol.rs

/root/repo/target/debug/deps/libsmlsc_ids-c492131fa24ff098.rmeta: crates/ids/src/lib.rs crates/ids/src/digest.rs crates/ids/src/stamp.rs crates/ids/src/symbol.rs

crates/ids/src/lib.rs:
crates/ids/src/digest.rs:
crates/ids/src/stamp.rs:
crates/ids/src/symbol.rs:
