/root/repo/target/debug/deps/smlsc_workload-2d66a78e6e457db4.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libsmlsc_workload-2d66a78e6e457db4.rlib: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libsmlsc_workload-2d66a78e6e457db4.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
