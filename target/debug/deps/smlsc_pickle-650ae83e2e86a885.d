/root/repo/target/debug/deps/smlsc_pickle-650ae83e2e86a885.d: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_pickle-650ae83e2e86a885.rmeta: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs Cargo.toml

crates/pickle/src/lib.rs:
crates/pickle/src/context.rs:
crates/pickle/src/dehydrate.rs:
crates/pickle/src/rehydrate.rs:
crates/pickle/src/testing.rs:
crates/pickle/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
