/root/repo/target/debug/deps/smlsc-2b3f340373593508.d: crates/smlsc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc-2b3f340373593508.rmeta: crates/smlsc/src/lib.rs Cargo.toml

crates/smlsc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
