/root/repo/target/debug/deps/smlsc_dynamics-b5e3b4634f28c70d.d: crates/dynamics/src/lib.rs crates/dynamics/src/eval.rs crates/dynamics/src/ir.rs crates/dynamics/src/value.rs

/root/repo/target/debug/deps/libsmlsc_dynamics-b5e3b4634f28c70d.rlib: crates/dynamics/src/lib.rs crates/dynamics/src/eval.rs crates/dynamics/src/ir.rs crates/dynamics/src/value.rs

/root/repo/target/debug/deps/libsmlsc_dynamics-b5e3b4634f28c70d.rmeta: crates/dynamics/src/lib.rs crates/dynamics/src/eval.rs crates/dynamics/src/ir.rs crates/dynamics/src/value.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/eval.rs:
crates/dynamics/src/ir.rs:
crates/dynamics/src/value.rs:
