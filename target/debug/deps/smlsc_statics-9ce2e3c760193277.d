/root/repo/target/debug/deps/smlsc_statics-9ce2e3c760193277.d: crates/statics/src/lib.rs crates/statics/src/elab/mod.rs crates/statics/src/elab/core.rs crates/statics/src/elab/modules.rs crates/statics/src/env.rs crates/statics/src/error.rs crates/statics/src/matchcomp.rs crates/statics/src/pervasive.rs crates/statics/src/realize.rs crates/statics/src/sigmatch.rs crates/statics/src/types.rs

/root/repo/target/debug/deps/libsmlsc_statics-9ce2e3c760193277.rmeta: crates/statics/src/lib.rs crates/statics/src/elab/mod.rs crates/statics/src/elab/core.rs crates/statics/src/elab/modules.rs crates/statics/src/env.rs crates/statics/src/error.rs crates/statics/src/matchcomp.rs crates/statics/src/pervasive.rs crates/statics/src/realize.rs crates/statics/src/sigmatch.rs crates/statics/src/types.rs

crates/statics/src/lib.rs:
crates/statics/src/elab/mod.rs:
crates/statics/src/elab/core.rs:
crates/statics/src/elab/modules.rs:
crates/statics/src/env.rs:
crates/statics/src/error.rs:
crates/statics/src/matchcomp.rs:
crates/statics/src/pervasive.rs:
crates/statics/src/realize.rs:
crates/statics/src/sigmatch.rs:
crates/statics/src/types.rs:
