/root/repo/target/debug/deps/smlsc_pickle-1868c84dc7ee54cf.d: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs

/root/repo/target/debug/deps/libsmlsc_pickle-1868c84dc7ee54cf.rmeta: crates/pickle/src/lib.rs crates/pickle/src/context.rs crates/pickle/src/dehydrate.rs crates/pickle/src/rehydrate.rs crates/pickle/src/testing.rs crates/pickle/src/wire.rs

crates/pickle/src/lib.rs:
crates/pickle/src/context.rs:
crates/pickle/src/dehydrate.rs:
crates/pickle/src/rehydrate.rs:
crates/pickle/src/testing.rs:
crates/pickle/src/wire.rs:
