/root/repo/target/debug/deps/smlsc_repo-2f5f4b31870fce70.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_repo-2f5f4b31870fce70.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
