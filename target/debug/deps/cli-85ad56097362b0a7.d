/root/repo/target/debug/deps/cli-85ad56097362b0a7.d: crates/smlsc/tests/cli.rs

/root/repo/target/debug/deps/cli-85ad56097362b0a7: crates/smlsc/tests/cli.rs

crates/smlsc/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_smlsc=/root/repo/target/debug/smlsc
