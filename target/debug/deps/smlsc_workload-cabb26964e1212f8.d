/root/repo/target/debug/deps/smlsc_workload-cabb26964e1212f8.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/smlsc_workload-cabb26964e1212f8: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
