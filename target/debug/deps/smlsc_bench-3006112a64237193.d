/root/repo/target/debug/deps/smlsc_bench-3006112a64237193.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmlsc_bench-3006112a64237193.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
