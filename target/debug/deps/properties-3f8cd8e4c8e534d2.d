/root/repo/target/debug/deps/properties-3f8cd8e4c8e534d2.d: tests/properties.rs

/root/repo/target/debug/deps/properties-3f8cd8e4c8e534d2: tests/properties.rs

tests/properties.rs:
