/root/repo/target/debug/deps/smlsc_core-52835bfc4a7d65fb.d: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/groups.rs crates/core/src/hash.rs crates/core/src/irm.rs crates/core/src/link.rs crates/core/src/session.rs crates/core/src/stdlib.rs crates/core/src/unit.rs

/root/repo/target/debug/deps/libsmlsc_core-52835bfc4a7d65fb.rmeta: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/groups.rs crates/core/src/hash.rs crates/core/src/irm.rs crates/core/src/link.rs crates/core/src/session.rs crates/core/src/stdlib.rs crates/core/src/unit.rs

crates/core/src/lib.rs:
crates/core/src/compile.rs:
crates/core/src/groups.rs:
crates/core/src/hash.rs:
crates/core/src/irm.rs:
crates/core/src/link.rs:
crates/core/src/session.rs:
crates/core/src/stdlib.rs:
crates/core/src/unit.rs:
