/root/repo/target/debug/deps/smlsc_workload-c2b59c182c6313ab.d: crates/workload/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_workload-c2b59c182c6313ab.rmeta: crates/workload/src/lib.rs Cargo.toml

crates/workload/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
