/root/repo/target/debug/deps/smlsc_bench-9d582f5b26a5b9f5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsmlsc_bench-9d582f5b26a5b9f5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
