/root/repo/target/debug/deps/smlsc-18387efb45bdeff9.d: crates/smlsc/src/bin/smlsc.rs

/root/repo/target/debug/deps/smlsc-18387efb45bdeff9: crates/smlsc/src/bin/smlsc.rs

crates/smlsc/src/bin/smlsc.rs:
