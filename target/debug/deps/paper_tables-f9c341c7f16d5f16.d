/root/repo/target/debug/deps/paper_tables-f9c341c7f16d5f16.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/libpaper_tables-f9c341c7f16d5f16.rmeta: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
