/root/repo/target/debug/deps/smlsc_ids-e99918259d973756.d: crates/ids/src/lib.rs crates/ids/src/digest.rs crates/ids/src/stamp.rs crates/ids/src/symbol.rs

/root/repo/target/debug/deps/smlsc_ids-e99918259d973756: crates/ids/src/lib.rs crates/ids/src/digest.rs crates/ids/src/stamp.rs crates/ids/src/symbol.rs

crates/ids/src/lib.rs:
crates/ids/src/digest.rs:
crates/ids/src/stamp.rs:
crates/ids/src/symbol.rs:
