/root/repo/target/debug/deps/value_props-10e186254fde7fa8.d: crates/dynamics/tests/value_props.rs

/root/repo/target/debug/deps/value_props-10e186254fde7fa8: crates/dynamics/tests/value_props.rs

crates/dynamics/tests/value_props.rs:
