/root/repo/target/debug/deps/roundtrip-13591e0e8a36eb01.d: crates/pickle/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-13591e0e8a36eb01: crates/pickle/tests/roundtrip.rs

crates/pickle/tests/roundtrip.rs:
