/root/repo/target/debug/deps/smlsc-2b1e6360630b32b4.d: crates/smlsc/src/bin/smlsc.rs

/root/repo/target/debug/deps/smlsc-2b1e6360630b32b4: crates/smlsc/src/bin/smlsc.rs

crates/smlsc/src/bin/smlsc.rs:
