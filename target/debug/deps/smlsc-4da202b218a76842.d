/root/repo/target/debug/deps/smlsc-4da202b218a76842.d: crates/smlsc/src/bin/smlsc.rs

/root/repo/target/debug/deps/libsmlsc-4da202b218a76842.rmeta: crates/smlsc/src/bin/smlsc.rs

crates/smlsc/src/bin/smlsc.rs:
