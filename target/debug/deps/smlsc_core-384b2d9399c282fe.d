/root/repo/target/debug/deps/smlsc_core-384b2d9399c282fe.d: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/groups.rs crates/core/src/hash.rs crates/core/src/irm.rs crates/core/src/link.rs crates/core/src/session.rs crates/core/src/stdlib.rs crates/core/src/unit.rs

/root/repo/target/debug/deps/libsmlsc_core-384b2d9399c282fe.rlib: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/groups.rs crates/core/src/hash.rs crates/core/src/irm.rs crates/core/src/link.rs crates/core/src/session.rs crates/core/src/stdlib.rs crates/core/src/unit.rs

/root/repo/target/debug/deps/libsmlsc_core-384b2d9399c282fe.rmeta: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/groups.rs crates/core/src/hash.rs crates/core/src/irm.rs crates/core/src/link.rs crates/core/src/session.rs crates/core/src/stdlib.rs crates/core/src/unit.rs

crates/core/src/lib.rs:
crates/core/src/compile.rs:
crates/core/src/groups.rs:
crates/core/src/hash.rs:
crates/core/src/irm.rs:
crates/core/src/link.rs:
crates/core/src/session.rs:
crates/core/src/stdlib.rs:
crates/core/src/unit.rs:
