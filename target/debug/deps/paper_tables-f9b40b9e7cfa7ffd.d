/root/repo/target/debug/deps/paper_tables-f9b40b9e7cfa7ffd.d: crates/bench/src/bin/paper_tables.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_tables-f9b40b9e7cfa7ffd.rmeta: crates/bench/src/bin/paper_tables.rs Cargo.toml

crates/bench/src/bin/paper_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
