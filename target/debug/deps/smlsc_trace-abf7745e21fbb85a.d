/root/repo/target/debug/deps/smlsc_trace-abf7745e21fbb85a.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/decision.rs crates/trace/src/histogram.rs crates/trace/src/json.rs crates/trace/src/names.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libsmlsc_trace-abf7745e21fbb85a.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/decision.rs crates/trace/src/histogram.rs crates/trace/src/json.rs crates/trace/src/names.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libsmlsc_trace-abf7745e21fbb85a.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/decision.rs crates/trace/src/histogram.rs crates/trace/src/json.rs crates/trace/src/names.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/decision.rs:
crates/trace/src/histogram.rs:
crates/trace/src/json.rs:
crates/trace/src/names.rs:
crates/trace/src/sink.rs:
