/root/repo/target/debug/deps/serde_json-0f765d5a1a7caa50.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0f765d5a1a7caa50.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0f765d5a1a7caa50.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
