/root/repo/target/debug/deps/smlsc_dynamics-54cab46b787aa7a6.d: crates/dynamics/src/lib.rs crates/dynamics/src/eval.rs crates/dynamics/src/ir.rs crates/dynamics/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_dynamics-54cab46b787aa7a6.rmeta: crates/dynamics/src/lib.rs crates/dynamics/src/eval.rs crates/dynamics/src/ir.rs crates/dynamics/src/value.rs Cargo.toml

crates/dynamics/src/lib.rs:
crates/dynamics/src/eval.rs:
crates/dynamics/src/ir.rs:
crates/dynamics/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
