/root/repo/target/debug/deps/smlsc_repo-6c854328ae28f509.d: src/lib.rs

/root/repo/target/debug/deps/libsmlsc_repo-6c854328ae28f509.rlib: src/lib.rs

/root/repo/target/debug/deps/libsmlsc_repo-6c854328ae28f509.rmeta: src/lib.rs

src/lib.rs:
