/root/repo/target/debug/deps/smlsc_bench-83766ef60b8b9483.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/smlsc_bench-83766ef60b8b9483: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
