/root/repo/target/debug/deps/smlsc_ids-452535c3fd3e2fe2.d: crates/ids/src/lib.rs crates/ids/src/digest.rs crates/ids/src/stamp.rs crates/ids/src/symbol.rs

/root/repo/target/debug/deps/libsmlsc_ids-452535c3fd3e2fe2.rlib: crates/ids/src/lib.rs crates/ids/src/digest.rs crates/ids/src/stamp.rs crates/ids/src/symbol.rs

/root/repo/target/debug/deps/libsmlsc_ids-452535c3fd3e2fe2.rmeta: crates/ids/src/lib.rs crates/ids/src/digest.rs crates/ids/src/stamp.rs crates/ids/src/symbol.rs

crates/ids/src/lib.rs:
crates/ids/src/digest.rs:
crates/ids/src/stamp.rs:
crates/ids/src/symbol.rs:
