/root/repo/target/debug/deps/sml_programs-1d81b1cd28656ea9.d: tests/sml_programs.rs

/root/repo/target/debug/deps/sml_programs-1d81b1cd28656ea9: tests/sml_programs.rs

tests/sml_programs.rs:
