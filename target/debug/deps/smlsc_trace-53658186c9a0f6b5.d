/root/repo/target/debug/deps/smlsc_trace-53658186c9a0f6b5.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/decision.rs crates/trace/src/histogram.rs crates/trace/src/json.rs crates/trace/src/names.rs crates/trace/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_trace-53658186c9a0f6b5.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/decision.rs crates/trace/src/histogram.rs crates/trace/src/json.rs crates/trace/src/names.rs crates/trace/src/sink.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/decision.rs:
crates/trace/src/histogram.rs:
crates/trace/src/json.rs:
crates/trace/src/names.rs:
crates/trace/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
