/root/repo/target/debug/deps/smlsc_core-9bbd1d576d413688.d: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/groups.rs crates/core/src/hash.rs crates/core/src/irm.rs crates/core/src/link.rs crates/core/src/session.rs crates/core/src/stdlib.rs crates/core/src/unit.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_core-9bbd1d576d413688.rmeta: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/groups.rs crates/core/src/hash.rs crates/core/src/irm.rs crates/core/src/link.rs crates/core/src/session.rs crates/core/src/stdlib.rs crates/core/src/unit.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/compile.rs:
crates/core/src/groups.rs:
crates/core/src/hash.rs:
crates/core/src/irm.rs:
crates/core/src/link.rs:
crates/core/src/session.rs:
crates/core/src/stdlib.rs:
crates/core/src/unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
