/root/repo/target/debug/deps/paper_tables-3df86e1de02b3537.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-3df86e1de02b3537: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
