/root/repo/target/debug/deps/smlsc_repo-5423b03f36011a4e.d: src/lib.rs

/root/repo/target/debug/deps/libsmlsc_repo-5423b03f36011a4e.rmeta: src/lib.rs

src/lib.rs:
