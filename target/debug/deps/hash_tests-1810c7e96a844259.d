/root/repo/target/debug/deps/hash_tests-1810c7e96a844259.d: crates/core/tests/hash_tests.rs

/root/repo/target/debug/deps/hash_tests-1810c7e96a844259: crates/core/tests/hash_tests.rs

crates/core/tests/hash_tests.rs:
