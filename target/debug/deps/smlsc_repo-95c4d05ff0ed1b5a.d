/root/repo/target/debug/deps/smlsc_repo-95c4d05ff0ed1b5a.d: src/lib.rs

/root/repo/target/debug/deps/libsmlsc_repo-95c4d05ff0ed1b5a.rmeta: src/lib.rs

src/lib.rs:
