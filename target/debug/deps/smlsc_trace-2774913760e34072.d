/root/repo/target/debug/deps/smlsc_trace-2774913760e34072.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/decision.rs crates/trace/src/histogram.rs crates/trace/src/json.rs crates/trace/src/names.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libsmlsc_trace-2774913760e34072.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/decision.rs crates/trace/src/histogram.rs crates/trace/src/json.rs crates/trace/src/names.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/decision.rs:
crates/trace/src/histogram.rs:
crates/trace/src/json.rs:
crates/trace/src/names.rs:
crates/trace/src/sink.rs:
