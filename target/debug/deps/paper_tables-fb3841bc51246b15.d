/root/repo/target/debug/deps/paper_tables-fb3841bc51246b15.d: crates/bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/libpaper_tables-fb3841bc51246b15.rmeta: crates/bench/src/bin/paper_tables.rs

crates/bench/src/bin/paper_tables.rs:
