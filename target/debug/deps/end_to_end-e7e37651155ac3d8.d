/root/repo/target/debug/deps/end_to_end-e7e37651155ac3d8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e7e37651155ac3d8: tests/end_to_end.rs

tests/end_to_end.rs:
