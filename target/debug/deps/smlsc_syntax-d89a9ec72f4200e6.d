/root/repo/target/debug/deps/smlsc_syntax-d89a9ec72f4200e6.d: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/deps.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/printer.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_syntax-d89a9ec72f4200e6.rmeta: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/deps.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/printer.rs Cargo.toml

crates/syntax/src/lib.rs:
crates/syntax/src/ast.rs:
crates/syntax/src/deps.rs:
crates/syntax/src/lexer.rs:
crates/syntax/src/parser.rs:
crates/syntax/src/printer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
