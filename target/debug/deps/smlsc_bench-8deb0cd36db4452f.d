/root/repo/target/debug/deps/smlsc_bench-8deb0cd36db4452f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsmlsc_bench-8deb0cd36db4452f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
