/root/repo/target/debug/deps/smlsc_dynamics-739289669219441d.d: crates/dynamics/src/lib.rs crates/dynamics/src/eval.rs crates/dynamics/src/ir.rs crates/dynamics/src/value.rs

/root/repo/target/debug/deps/libsmlsc_dynamics-739289669219441d.rmeta: crates/dynamics/src/lib.rs crates/dynamics/src/eval.rs crates/dynamics/src/ir.rs crates/dynamics/src/value.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/eval.rs:
crates/dynamics/src/ir.rs:
crates/dynamics/src/value.rs:
