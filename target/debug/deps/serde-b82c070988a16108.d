/root/repo/target/debug/deps/serde-b82c070988a16108.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b82c070988a16108.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b82c070988a16108.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
