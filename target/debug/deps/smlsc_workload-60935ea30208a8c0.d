/root/repo/target/debug/deps/smlsc_workload-60935ea30208a8c0.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libsmlsc_workload-60935ea30208a8c0.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
