/root/repo/target/debug/deps/smlsc_trace-12ae18d777a315b4.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/decision.rs crates/trace/src/histogram.rs crates/trace/src/json.rs crates/trace/src/names.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/smlsc_trace-12ae18d777a315b4: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/decision.rs crates/trace/src/histogram.rs crates/trace/src/json.rs crates/trace/src/names.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/decision.rs:
crates/trace/src/histogram.rs:
crates/trace/src/json.rs:
crates/trace/src/names.rs:
crates/trace/src/sink.rs:
