/root/repo/target/debug/deps/smlsc-b2df958d4ff6a35c.d: crates/smlsc/src/lib.rs

/root/repo/target/debug/deps/libsmlsc-b2df958d4ff6a35c.rmeta: crates/smlsc/src/lib.rs

crates/smlsc/src/lib.rs:
