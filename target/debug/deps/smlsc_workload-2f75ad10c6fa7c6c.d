/root/repo/target/debug/deps/smlsc_workload-2f75ad10c6fa7c6c.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libsmlsc_workload-2f75ad10c6fa7c6c.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
