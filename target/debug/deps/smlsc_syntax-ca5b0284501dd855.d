/root/repo/target/debug/deps/smlsc_syntax-ca5b0284501dd855.d: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/deps.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/printer.rs

/root/repo/target/debug/deps/libsmlsc_syntax-ca5b0284501dd855.rlib: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/deps.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/printer.rs

/root/repo/target/debug/deps/libsmlsc_syntax-ca5b0284501dd855.rmeta: crates/syntax/src/lib.rs crates/syntax/src/ast.rs crates/syntax/src/deps.rs crates/syntax/src/lexer.rs crates/syntax/src/parser.rs crates/syntax/src/printer.rs

crates/syntax/src/lib.rs:
crates/syntax/src/ast.rs:
crates/syntax/src/deps.rs:
crates/syntax/src/lexer.rs:
crates/syntax/src/parser.rs:
crates/syntax/src/printer.rs:
