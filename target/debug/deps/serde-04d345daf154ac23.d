/root/repo/target/debug/deps/serde-04d345daf154ac23.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-04d345daf154ac23.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
