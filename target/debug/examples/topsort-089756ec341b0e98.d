/root/repo/target/debug/examples/topsort-089756ec341b0e98.d: examples/topsort.rs

/root/repo/target/debug/examples/topsort-089756ec341b0e98: examples/topsort.rs

examples/topsort.rs:
