/root/repo/target/debug/examples/visible_compiler-d922960d89cf7dbd.d: examples/visible_compiler.rs

/root/repo/target/debug/examples/visible_compiler-d922960d89cf7dbd: examples/visible_compiler.rs

examples/visible_compiler.rs:
