/root/repo/target/debug/examples/cutoff_vs_make-2f4d6ea085e284ca.d: examples/cutoff_vs_make.rs

/root/repo/target/debug/examples/cutoff_vs_make-2f4d6ea085e284ca: examples/cutoff_vs_make.rs

examples/cutoff_vs_make.rs:
