/root/repo/target/debug/examples/functorized_style-5a9e2eae395a93a7.d: examples/functorized_style.rs

/root/repo/target/debug/examples/functorized_style-5a9e2eae395a93a7: examples/functorized_style.rs

examples/functorized_style.rs:
