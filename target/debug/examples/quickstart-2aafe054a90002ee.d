/root/repo/target/debug/examples/quickstart-2aafe054a90002ee.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2aafe054a90002ee: examples/quickstart.rs

examples/quickstart.rs:
