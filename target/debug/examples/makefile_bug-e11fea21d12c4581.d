/root/repo/target/debug/examples/makefile_bug-e11fea21d12c4581.d: examples/makefile_bug.rs

/root/repo/target/debug/examples/makefile_bug-e11fea21d12c4581: examples/makefile_bug.rs

examples/makefile_bug.rs:
