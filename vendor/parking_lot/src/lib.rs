//! Functional mini-stub of parking_lot over std::sync (offline dev aid).
use std::sync;

#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(t))
    }
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(t))
    }
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
