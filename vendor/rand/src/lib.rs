//! Functional mini-stub of rand (offline dev aid): splitmix64-backed
//! StdRng with just enough of the 0.8 API surface for this workspace.
//! NOT the real rand stream — local runs only; never shipped.
use std::ops::{Range, RangeInclusive};

pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range");
                self.start + (next_u64(&mut rng.state) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                let span = (e - s) as u64 + 1;
                s + (next_u64(&mut rng.state) % span) as $t
            }
        }
    )*};
}

range_impls!(usize, u64, u32, i32, i64);

pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for rngs::StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}
