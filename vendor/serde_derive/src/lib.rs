//! Functional mini serde derive (offline dev aid): parses the item's
//! token stream directly (no syn/quote) and emits `to_value` /
//! `from_value` impls against the mini-serde `Value` data model.
//! Handles non-generic structs (named, tuple, unit) and enums with
//! unit / tuple / struct variants — the shapes this workspace uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a `#[derive]` input parses to.
enum Item {
    /// `struct S { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(A, B);` — arity only.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Consumes leading `#[...]` attribute pairs.
fn skip_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        toks.next(); // the [...] group
    }
}

/// Consumes `pub` / `pub(crate)` / `pub(in ...)` if present.
fn skip_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Splits a field-list token stream on top-level commas, tracking
/// angle-bracket depth so `Vec<(A, B)>`-style commas don't split.
fn split_top_level_commas(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in ts {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(tt);
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

/// Field names of a `{ ... }` struct body.
fn named_fields(body: TokenStream) -> Vec<String> {
    split_top_level_commas(body)
        .into_iter()
        .map(|field| {
            let mut toks = field.into_iter().peekable();
            skip_attrs(&mut toks);
            skip_vis(&mut toks);
            match toks.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde mini-derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_vis(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde mini-derive: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde mini-derive: expected type name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde mini-derive: generic type `{name}` unsupported");
    }
    match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: split_top_level_commas(g.stream()).len(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde mini-derive: bad struct body: {other:?}"),
        },
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde mini-derive: bad enum body: {other:?}"),
            };
            let variants = split_top_level_commas(body)
                .into_iter()
                .map(|vt| {
                    let mut toks = vt.into_iter().peekable();
                    skip_attrs(&mut toks);
                    let vname = match toks.next() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde mini-derive: expected variant name, got {other:?}"),
                    };
                    let shape = match toks.next() {
                        None => VariantShape::Unit,
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            VariantShape::Tuple(split_top_level_commas(g.stream()).len())
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            VariantShape::Named(named_fields(g.stream()))
                        }
                        other => panic!("serde mini-derive: bad variant shape: {other:?}"),
                    };
                    Variant { name: vname, shape }
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde mini-derive: unsupported item kind `{other}`"),
    }
}

fn ser_body(item: &Item) -> String {
    match item {
        Item::NamedStruct { fields, .. } => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Item::TupleStruct { arity: 1, .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::TupleStruct { arity, .. } => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Seq(::std::vec![{items}])")
        }
        Item::UnitStruct { .. } => "::serde::Value::Unit".to_string(),
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::variant(\"{vn}\", ::serde::Value::Unit)"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::variant(\
                             \"{vn}\", ::serde::Serialize::to_value(f0))"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|i| format!("f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::variant(\
                                 \"{vn}\", ::serde::Value::Seq(::std::vec![{items}]))"
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::variant(\
                                 \"{vn}\", ::serde::Value::Map(::std::vec![{entries}]))"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join(",\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    }
}

fn de_body(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::Value::map_get(m, \"{f}\")?)?"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let m = v.as_map(\"{name}\")?;\n        \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Item::TupleStruct { name, arity } => {
            let inits = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let s = v.as_seq_n({arity}, \"{name}\")?;\n        \
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Item::UnitStruct { name } => format!("::std::result::Result::Ok({name})"),
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn})")
                        }
                        VariantShape::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(payload)?))"
                        ),
                        VariantShape::Tuple(n) => {
                            let inits = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "\"{vn}\" => {{ \
                                 let s = payload.as_seq_n({n}, \"{name}::{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn}({inits})) }}"
                            )
                        }
                        VariantShape::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::Value::map_get(m, \"{f}\")?)?"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "\"{vn}\" => {{ \
                                 let m = payload.as_map(\"{name}::{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) }}"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join(",\n            ");
            format!(
                "let (tag, payload) = v.as_variant(\"{name}\")?;\n        \
                 let _ = payload;\n        \
                 match tag {{\n            {arms},\n            \
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant {name}::{{other}}\")))\n        }}"
            )
        }
    }
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item_name(&item);
    let body = ser_body(&item);
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n    \
             fn to_value(&self) -> ::serde::Value {{\n        \
                 {body}\n    \
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item_name(&item);
    let body = de_body(&item);
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n    \
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n        \
                 {body}\n    \
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
