//! Functional mini-stub of proptest (offline dev aid): deterministic
//! splitmix64-driven generation with just enough of the 1.x API surface
//! for this workspace's property tests.  NOT real proptest — no
//! shrinking, no persistence — local runs only; never shipped.

/// Deterministic generator state threaded through strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test name and case index.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

pub mod strategy {
    //! Strategies: value generators.

    use crate::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
                self.generate(rng)
            }))
        }

        /// Recursive strategies: `depth` levels of `expand` over the
        /// leaf, each level choosing between staying shallow and
        /// expanding (the size-control parameters are ignored).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = OneOf(vec![cur.clone(), expand(cur).boxed()]).boxed();
            }
            cur
        }
    }

    /// A mapped strategy.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy (cheaply cloneable).
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// A uniform choice among boxed strategies (see `prop_oneof!`).
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range");
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    let span = (e - s) as u64 + 1;
                    s + rng.below(span) as $t
                }
            }
        )*};
    }
    int_ranges!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($($s:ident/$i:tt),*) => {
            impl<$($s: Strategy),*> Strategy for ($($s,)*) {
                type Value = ($($s::Value,)*);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

    /// String literals act as string strategies.  The regex pattern is
    /// not interpreted; arbitrary printable-plus-whitespace soup is
    /// produced, which is what the totality tests want anyway.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(64) as usize;
            (0..len)
                .map(|_| {
                    let c = rng.below(96) as u8;
                    match c {
                        95 => '\n',
                        94 => '\t',
                        c => (b' ' + c) as char,
                    }
                })
                .collect()
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Produces one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// A strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min).max(1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `vec(element, min..max)`.
    pub fn vec<S: Strategy>(elem: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            min: range.start,
            max: range.end,
        }
    }
}

pub mod option {
    //! Optional-value strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// A strategy for `Option<T>` (`None` about a quarter of the time).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `of(element)`: maybe an element, maybe `None`.
    pub fn of<S: Strategy>(elem: S) -> OptionStrategy<S> {
        OptionStrategy(elem)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

pub mod prelude {
    //! The usual imports.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};
}

/// Picks one of several same-valued strategies uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Asserts inside a property (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}
