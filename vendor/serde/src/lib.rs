//! Functional mini-serde (offline dev aid): a self-describing [`Value`]
//! data model with `Serialize`/`Deserialize` traits whose provided
//! methods route through it.  Just enough of the real serde surface for
//! this workspace — derived impls override `to_value`/`from_value`,
//! hand-written impls override `serialize`/`deserialize` — NOT real
//! serde; local builds only, never shipped.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `()`, `None`, JSON `null`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// Any unsigned integer.
    UInt(u128),
    /// Any negative integer.
    Int(i128),
    /// A float.
    Float(f64),
    /// A string (also `char`).
    Str(String),
    /// A sequence: `Vec`, tuples, tuple structs/variants.
    Seq(Vec<Value>),
    /// Named fields of a struct or struct variant.
    Map(Vec<(String, Value)>),
    /// An enum variant and its payload (`Unit` when none).
    Variant(String, Box<Value>),
}

const UNIT_VALUE: Value = Value::Unit;

impl Value {
    /// A variant value (codegen convenience).
    pub fn variant(name: &str, payload: Value) -> Value {
        Value::Variant(name.to_string(), Box::new(payload))
    }

    /// The fields of a map, or an error naming `what`.
    pub fn as_map(&self, what: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(Error::custom(format!(
                "{what}: expected map, got {other:?}"
            ))),
        }
    }

    /// The elements of a sequence of exactly `n` items.
    pub fn as_seq_n(&self, n: usize, what: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(s) if s.len() == n => Ok(s),
            other => Err(Error::custom(format!(
                "{what}: expected {n}-element seq, got {other:?}"
            ))),
        }
    }

    /// The elements of a sequence of any length.
    pub fn as_seq(&self, what: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(s) => Ok(s),
            other => Err(Error::custom(format!(
                "{what}: expected seq, got {other:?}"
            ))),
        }
    }

    /// The string payload.
    pub fn as_str(&self, what: &str) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!(
                "{what}: expected string, got {other:?}"
            ))),
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self, what: &str) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "{what}: expected bool, got {other:?}"
            ))),
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u128(&self, what: &str) -> Result<u128, Error> {
        match self {
            Value::UInt(v) => Ok(*v),
            Value::Int(v) if *v >= 0 => Ok(*v as u128),
            other => Err(Error::custom(format!(
                "{what}: expected unsigned int, got {other:?}"
            ))),
        }
    }

    /// The value as a signed integer.
    pub fn as_i128(&self, what: &str) -> Result<i128, Error> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::UInt(v) if *v <= i128::MAX as u128 => Ok(*v as i128),
            other => Err(Error::custom(format!(
                "{what}: expected int, got {other:?}"
            ))),
        }
    }

    /// The value as a float.
    pub fn as_f64(&self, what: &str) -> Result<f64, Error> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::UInt(v) => Ok(*v as f64),
            Value::Int(v) => Ok(*v as f64),
            other => Err(Error::custom(format!(
                "{what}: expected float, got {other:?}"
            ))),
        }
    }

    /// Looks up a struct field by name.
    pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
        m.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
    }

    /// The variant name and payload.  JSON loses the `Variant`
    /// constructor, so one-entry maps and bare strings are accepted too.
    pub fn as_variant(&self, what: &str) -> Result<(&str, &Value), Error> {
        match self {
            Value::Variant(n, p) => Ok((n, p)),
            Value::Map(m) if m.len() == 1 => Ok((&m[0].0, &m[0].1)),
            Value::Str(s) => Ok((s, &UNIT_VALUE)),
            other => Err(Error::custom(format!(
                "{what}: expected variant, got {other:?}"
            ))),
        }
    }
}

/// The one error type of the mini-serde stack.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}
impl std::error::Error for Error {}
impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl Error {
    /// A free-form error.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// A serializable value.  Implement `serialize` (streaming style, as in
/// real serde) or `to_value` (what the derive emits); each defaults to
/// the other.
pub trait Serialize {
    /// Streams `self` into `serializer`.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer,
    {
        serializer.serialize_value(self.to_value())
    }

    /// `self` in the data model.
    fn to_value(&self) -> Value {
        match self.serialize(ValueSerializer) {
            Ok(v) => v,
            Err(e) => panic!("infallible value serialization failed: {e}"),
        }
    }
}

/// A sink for serialized values.
pub trait Serializer: Sized {
    /// Result of successful serialization.
    type Ok;
    /// Serialization error.
    type Error: ser::Error;
    /// Writes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Writes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Writes a whole data-model value.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// The serializer behind `to_value`: it just returns the value.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::Str(v.to_string()))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::UInt(u128::from(v)))
    }
    fn serialize_value(self, v: Value) -> Result<Value, Error> {
        Ok(v)
    }
}

/// A source of data-model values.
pub trait Deserializer<'de>: Sized {
    /// Deserialization error.
    type Error: de::Error;
    /// The next value.
    fn value(self) -> Result<Value, Self::Error>;
}

/// A deserializable value.  Implement `deserialize` (as in real serde)
/// or `from_value` (what the derive emits); each defaults to the other.
pub trait Deserialize<'de>: Sized {
    /// Reads `Self` from a deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>,
    {
        let v = deserializer.value()?;
        Self::from_value(&v).map_err(<D::Error as de::Error>::custom)
    }

    /// Reads `Self` out of the data model.
    fn from_value(v: &Value) -> Result<Self, Error> {
        Self::deserialize(ValueDeserializer(v.clone()))
    }
}

/// The deserializer behind `from_value`: it just yields the value.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;
    fn value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

pub mod ser {
    //! Serialization-side error plumbing.
    use std::fmt;
    /// Errors a serializer can produce.
    pub trait Error: Sized + std::error::Error {
        /// A free-form error.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    //! Deserialization-side error plumbing.
    use std::fmt;
    /// Errors a deserializer can produce.
    pub trait Error: Sized + std::error::Error {
        /// A free-form error.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u128(stringify!($t))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 { Value::UInt(v as u128) } else { Value::Int(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i128(stringify!($t))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(v.as_f64(stringify!($t))? as $t)
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool("bool")
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str("char")?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected one char, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str("String")?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Unit
    }
}
impl<'de> Deserialize<'de> for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq("Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(std::rc::Rc::new(T::from_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(std::sync::Arc::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Unit,
            Some(t) => t.to_value(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Unit => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:ident/$i:tt),+))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $i; 1 })+;
                let s = v.as_seq_n(N, "tuple")?;
                Ok(($($n::from_value(&s[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(u128::from_value(&u128::MAX.to_value()).unwrap(), u128::MAX);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        let v: Vec<(u32, String)> = vec![(1, "a".into())];
        assert_eq!(Vec::<(u32, String)>::from_value(&v.to_value()).unwrap(), v);
    }
}
