//! Functional mini serde_json (offline dev aid): renders and parses
//! real JSON through the mini-serde `Value` data model.  Integers keep
//! full 128-bit precision (pids!); floats only appear if a type uses
//! them.  NOT real serde_json; local builds only, never shipped.

use std::fmt;

use serde::{Deserialize, Serialize, Value, ValueSerializer};

/// JSON encode/decode error.
#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}
impl std::error::Error for Error {}
impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}
impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
        Value::Variant(name, payload) => {
            out.push('{');
            write_escaped(name, out);
            out.push(':');
            write_value(payload, out);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Parser<'a> {
        Parser { bytes, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                // Multi-byte UTF-8: collect the full sequence.
                b => {
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated utf-8".into()))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| Error(e.to_string()))?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(e.to_string()))
        } else if let Some(neg) = text.strip_prefix('-') {
            neg.parse::<i128>()
                .map(|n| Value::Int(-n))
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|e| Error(e.to_string()))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Unit),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!("bad array separator `{}`", other as char)))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!("bad object separator `{}`", other as char)))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }
}

/// Parses a JSON document into the data model.
pub fn parse_value(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser::new(bytes);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing garbage at byte {}", p.pos)));
    }
    Ok(v)
}

fn value_of<T: ?Sized + Serialize>(value: &T) -> Result<Value, Error> {
    value
        .serialize(ValueSerializer)
        .map_err(|e| Error(e.to_string()))
}

/// Serializes to JSON bytes.
pub fn to_vec<T: ?Sized + Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to a JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value_of(value)?, &mut out);
    Ok(out)
}

/// Serializes to a JSON string (same compact form; pretty-printing is
/// not worth carrying in the offline stub).
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Deserializes from JSON bytes.
pub fn from_slice<'a, T: Deserialize<'a>>(v: &'a [u8]) -> Result<T, Error> {
    let value = parse_value(v)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Deserializes from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_values() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(u64::MAX)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, format!("[1,null,{}]", u64::MAX));
        let back: Vec<Option<u64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\u{1F600}é".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn u128_precision_is_exact() {
        let n = u128::MAX - 12345;
        let json = to_string(&n).unwrap();
        let back: u128 = from_str(&json).unwrap();
        assert_eq!(back, n);
    }
}
