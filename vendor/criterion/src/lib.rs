//! Minimal offline reimplementation of the criterion benchmarking API
//! surface this workspace uses: `Criterion`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It is a *measurement sketch*, not a statistics engine: each benchmark
//! is warmed up briefly, then timed over enough iterations to fill the
//! group's measurement time, and the mean per-iteration cost is printed.
//! The point is that `cargo bench` and `cargo clippy --all-targets`
//! work in this offline container with the same bench sources that run
//! under real criterion elsewhere.

use std::time::{Duration, Instant};

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean per-iteration duration of the measured closure, filled in by
    /// [`Bencher::iter`].
    measured: Option<Duration>,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `f` repeatedly and records the mean per-iteration cost.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and calibration: figure out how many iterations fit.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.measured = Some(t0.elapsed() / iters);
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the mini-harness reports a mean,
    /// not a sampled distribution.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchName>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.measurement_time, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.measurement_time, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; criterion prints summaries).
    pub fn finish(&mut self) {}
}

/// Anything usable as a benchmark label (`&str` or [`BenchmarkId`]).
pub struct BenchName(String);

impl From<&str> for BenchName {
    fn from(s: &str) -> Self {
        BenchName(s.to_string())
    }
}

impl From<String> for BenchName {
    fn from(s: String) -> Self {
        BenchName(s)
    }
}

impl From<BenchmarkId> for BenchName {
    fn from(id: BenchmarkId) -> Self {
        BenchName(id.label)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Criterion {
    /// Fresh driver with the default 1s measurement budget.
    pub fn new() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = if self.measurement_time.is_zero() {
            Duration::from_secs(1)
        } else {
            self.measurement_time
        };
        BenchmarkGroup {
            name: name.into(),
            measurement_time,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = if self.measurement_time.is_zero() {
            Duration::from_secs(1)
        } else {
            self.measurement_time
        };
        run_one(name, budget, f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

fn run_one<F>(label: &str, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        measured: None,
        // Keep offline runs snappy regardless of the configured budget.
        measurement_time: budget.min(Duration::from_millis(300)),
    };
    f(&mut b);
    match b.measured {
        Some(d) => println!("{label:<40} {:>12.3} µs/iter", d.as_secs_f64() * 1e6),
        None => println!("{label:<40} (no measurement)"),
    }
}

/// Collects benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::new().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.measurement_time(Duration::from_millis(10)).sample_size(5);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with", 4), &4, |b, n| b.iter(|| n * 2));
        g.finish();
    }

    criterion_group!(demo, sample_bench);

    #[test]
    fn harness_runs_and_measures() {
        demo();
        let mut b = Bencher {
            measured: None,
            measurement_time: Duration::from_millis(5),
        };
        b.iter(|| std::hint::black_box(3 * 3));
        assert!(b.measured.is_some());
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("first", 8).label, "first/8");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }
}
